//! Cloneable readers–writer handles.
//!
//! [`Shared<T>`] wraps a value in `Arc<RwLock<T>>`: many concurrent
//! readers, exclusive writers. Unlike raw [`std::sync::RwLock`] it does
//! not surface poisoning — a panic while holding the lock leaves the
//! value in whatever state the panicking writer produced, and later
//! accessors simply proceed. That matches `parking_lot` semantics,
//! which the store's concurrency layer was originally written against:
//! an invariant-checking reader is still able to inspect (and tests are
//! able to assert on) state after a writer panics.

use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A cloneable, thread-safe handle to a `T` behind a readers–writer
/// lock. Clones share the same underlying value.
#[derive(Debug, Default)]
pub struct Shared<T> {
    inner: Arc<RwLock<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Shared<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(RwLock::new(value)),
        }
    }

    /// Acquire a shared read guard (recovers from poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (recovers from poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Run a closure with read access (keeps the guard scoped).
    pub fn with_read<U>(&self, f: impl FnOnce(&T) -> U) -> U {
        f(&self.read())
    }

    /// Run a closure with write access.
    pub fn with_write<U>(&self, f: impl FnOnce(&mut T) -> U) -> U {
        f(&mut self.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Shared::new(0u32);
        let b = a.clone();
        *a.write() += 5;
        assert_eq!(*b.read(), 5);
    }

    #[test]
    fn with_read_and_with_write_scope_guards() {
        let s = Shared::new(vec![1, 2, 3]);
        let sum: i32 = s.with_read(|v| v.iter().sum());
        assert_eq!(sum, 6);
        s.with_write(|v| v.push(4));
        assert_eq!(s.with_read(Vec::len), 4);
    }

    #[test]
    fn concurrent_readers_and_writers_agree_on_the_final_state() {
        let shared = Shared::new(Vec::<u32>::new());
        let writers = 4u32;
        let per_writer = 500u32;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let handle = shared.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        handle.with_write(|v| v.push(w * per_writer + i));
                    }
                });
            }
            for _ in 0..4 {
                let handle = shared.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let n = handle.with_read(Vec::len);
                        assert!(n <= (writers * per_writer) as usize);
                    }
                });
            }
        });
        let mut got = shared.with_read(Vec::clone);
        got.sort_unstable();
        let expected: Vec<u32> = (0..writers * per_writer).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let shared = Shared::new(7u32);
        let clone = shared.clone();
        let result = std::thread::spawn(move || {
            let _guard = clone.write();
            panic!("poison the lock");
        })
        .join();
        assert!(result.is_err());
        // The lock is poisoned; reads still work.
        assert_eq!(*shared.read(), 7);
        *shared.write() = 8;
        assert_eq!(*shared.read(), 8);
    }
}
