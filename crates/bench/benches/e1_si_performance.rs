//! E1 — identification cost per execution mode (Fig 7, performance).
//!
//! Benches full-corpus ingestion (identification only) for temporal vs
//! complete matching at two corpus sizes; complete should scale
//! super-linearly, temporal ~linearly.

use storypivot_bench::{corpus_constant_density, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;

fn main() {
    let mut group = BenchGroup::from_env("e1_identification");
    for &n in &[400usize, 1_200] {
        let corpus = corpus_constant_density(n, 8, 7);
        for (name, cfg) in [
            ("temporal", PivotConfig::temporal(OMEGA)),
            ("complete", PivotConfig::complete()),
        ] {
            group.bench(&format!("{name}/{}", corpus.len()), || {
                let mut pivot = pivot_for(&corpus, cfg.clone());
                for s in &corpus.snippets {
                    pivot.ingest(s.clone()).unwrap();
                }
                pivot.story_count()
            });
        }
    }
    group.finish();
}
