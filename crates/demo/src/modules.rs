//! Text renderers for the demo's UI modules (Figures 3–7).
//!
//! Each renderer produces plain text from the live engine state, so the
//! demo semantics are scriptable, diffable, and testable. The layouts
//! follow the paper's figures: document selection (Fig. 3), story
//! overview (Fig. 4), stories per source (Fig. 5), snippets per story
//! (Fig. 6), and the statistics module (Fig. 7).

use std::fmt::Write as _;

use storypivot_core::pivot::StoryPivot;
use storypivot_core::state::StoryState;
use storypivot_extract::Document;
use storypivot_types::{GlobalStory, GlobalStoryId, SnippetId, SnippetRole, SourceId, StoryId};

use crate::names::NameSource;

fn source_name(pivot: &StoryPivot, id: SourceId) -> String {
    pivot
        .store()
        .source(id)
        .map(|s| s.name.clone())
        .unwrap_or_else(|| id.to_string())
}

/// Digest of entity codes like `{UKR,5}; {NTH,2}` (Figure 4 style).
fn entity_digest(states: &[&StoryState], names: &dyn NameSource, k: usize) -> String {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for st in states {
        for (e, c) in st.top_entities(k * 2) {
            *counts.entry(e.raw() as u64).or_insert(0) += c;
        }
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v.iter()
        .map(|&(e, c)| format!("{{{},{c}}}", names.entity_code(storypivot_types::EntityId::new(e as u32))))
        .collect::<Vec<_>>()
        .join("; ")
}

/// Digest of description terms like `{crash,3}; {plane,3}` (Figure 4).
fn term_digest(states: &[&StoryState], names: &dyn NameSource, k: usize) -> String {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for st in states {
        for (t, c) in st.top_terms(k * 2) {
            *counts.entry(t.raw() as u64).or_insert(0) += c;
        }
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v.iter()
        .map(|&(t, c)| format!("{{{},{c}}}", names.term_name(storypivot_types::TermId::new(t as u32))))
        .collect::<Vec<_>>()
        .join("; ")
}

fn member_states<'a>(pivot: &'a StoryPivot, g: &GlobalStory) -> Vec<&'a StoryState> {
    g.member_stories
        .iter()
        .filter_map(|&s| pivot.story(s))
        .collect()
}

/// Figure 3 — the document selection module: available documents with
/// source, URL, and a preview; ingested ones are marked `[x]`.
pub fn document_selection(pivot: &StoryPivot, docs: &[Document], ingested: &[bool]) -> String {
    let mut out = String::from("=== Document Selection =================================\n");
    for (i, d) in docs.iter().enumerate() {
        let mark = if ingested.get(i).copied().unwrap_or(false) {
            "[x]"
        } else {
            "[ ]"
        };
        let preview: String = d.body.chars().take(60).collect();
        let _ = writeln!(
            out,
            "{mark} #{i:<2} {:<22} {:<36} {}",
            source_name(pivot, d.source),
            d.url,
            d.title
        );
        let _ = writeln!(out, "        {} | {preview}...", d.timestamp);
    }
    out
}

/// Figure 4 — the story overview module: one row per integrated story
/// with sources, entity digest, and description digest; plus a detail
/// panel for the selected story.
pub fn story_overview(pivot: &StoryPivot, names: &dyn NameSource) -> String {
    let mut out = String::from("=== Story Overview =====================================\n");
    let _ = writeln!(out, "{:<6} {:<28} {:<30} Description", "Story", "Sources", "Entities");
    for g in pivot.global_stories() {
        let states = member_states(pivot, g);
        let sources = g
            .sources
            .iter()
            .map(|&s| source_name(pivot, s))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{:<6} {:<28} {:<30} {}",
            g.id.to_string(),
            sources,
            entity_digest(&states, names, 3),
            term_digest(&states, names, 3),
        );
    }
    out
}

/// Figure 4's detail panel — full information on one integrated story.
pub fn story_information(pivot: &StoryPivot, id: GlobalStoryId, names: &dyn NameSource) -> String {
    let Some(g) = pivot.alignment().and_then(|o| o.global_story(id)) else {
        return format!("story {id}: not found\n");
    };
    let states = member_states(pivot, g);
    let mut out = String::new();
    let _ = writeln!(out, "--- Story Information: {id} ---");
    let _ = writeln!(
        out,
        "Sources     {}",
        g.sources
            .iter()
            .map(|&s| source_name(pivot, s))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "Entities    {}", entity_digest(&states, names, 6));
    let _ = writeln!(out, "Description {}", term_digest(&states, names, 9));
    let _ = writeln!(out, "Start Date  {}", g.lifespan.start);
    let _ = writeln!(out, "End Date    {}", g.lifespan.end);
    let _ = writeln!(
        out,
        "Snippets    {} ({} aligning, {} enriching)",
        g.len(),
        g.aligning().count(),
        g.enriching().count()
    );
    out
}

/// Figure 5 — stories per source: the identification view. Shows each
/// story of the source with its member snippets on a time axis.
pub fn stories_per_source(pivot: &StoryPivot, source: SourceId, names: &dyn NameSource) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Stories per Source: {} ===", source_name(pivot, source));
    for st in pivot.stories_of_source(source) {
        let _ = writeln!(
            out,
            "{}  [{} .. {}]  {} snippets  entities: {}",
            st.id(),
            st.lifespan().start,
            st.lifespan().end,
            st.len(),
            entity_digest(&[st], names, 4),
        );
        for &m in &st.story.members {
            if let Some(sn) = pivot.store().get(m) {
                let _ = writeln!(out, "    {m}  {}  {}", sn.timestamp, sn.content.headline);
            }
        }
    }
    out
}

/// Figure 5's detail panel — one snippet's extraction record.
pub fn snippet_information(pivot: &StoryPivot, id: SnippetId, names: &dyn NameSource) -> String {
    let Some(sn) = pivot.store().get(id) else {
        return format!("snippet {id}: not found\n");
    };
    let mut out = String::new();
    let _ = writeln!(out, "--- Snippet Information: {id} ---");
    let _ = writeln!(out, "Source      {}", source_name(pivot, sn.source));
    let _ = writeln!(out, "Timestamp   {}", sn.timestamp);
    let _ = writeln!(out, "Document    {}", sn.doc);
    let _ = writeln!(out, "Event Type  {}", sn.content.event_type);
    let entities = sn
        .entities()
        .keys()
        .map(|e| names.entity_code(e))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "Entities    {entities}");
    let mut terms: Vec<(storypivot_types::TermId, f32)> = sn.terms().iter().collect();
    terms.sort_by(|a, b| b.1.total_cmp(&a.1));
    let terms = terms
        .iter()
        .take(6)
        .map(|&(t, _)| names.term_name(t))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "Description {terms}");
    if let Some(story) = pivot.story_of(id) {
        let _ = writeln!(out, "Story       {story}");
    }
    if let Some(g) = pivot.global_of(id) {
        let _ = writeln!(out, "Global      {g}");
    }
    out
}

/// Figure 6 — snippets per story: the alignment view. One lane per
/// source, snippets in time order, with roles.
pub fn snippets_per_story(pivot: &StoryPivot, id: GlobalStoryId, names: &dyn NameSource) -> String {
    let Some(g) = pivot.alignment().and_then(|o| o.global_story(id)) else {
        return format!("story {id}: not found\n");
    };
    let mut out = String::new();
    let _ = writeln!(out, "=== Snippets per Story: {id} ===");
    for &src in &g.sources {
        let _ = writeln!(out, "{}:", source_name(pivot, src));
        let mut lane: Vec<(SnippetId, SnippetRole)> = g
            .members
            .iter()
            .copied()
            .filter(|&(m, _)| pivot.store().get(m).map(|s| s.source) == Some(src))
            .collect();
        lane.sort_by_key(|&(m, _)| pivot.store().get(m).map(|s| s.timestamp));
        for (m, role) in lane {
            if let Some(sn) = pivot.store().get(m) {
                let tag = match role {
                    SnippetRole::Aligning => "align ",
                    SnippetRole::Enriching => "enrich",
                };
                let _ = writeln!(out, "    {} {m:<5} {}  {}", tag, sn.timestamp, sn.content.headline);
            }
        }
    }
    out.push_str(&story_information(pivot, id, names));
    out
}

/// One row of the statistics module's results table.
#[derive(Debug, Clone)]
pub struct StatRow {
    /// Dataset label.
    pub dataset: String,
    /// Identification method label.
    pub si_method: String,
    /// Alignment method label.
    pub sa_method: String,
    /// Number of events processed.
    pub events: usize,
    /// Mean per-event execution time in milliseconds.
    pub exec_ms: f64,
    /// F-measure against ground truth.
    pub f_measure: f64,
}

/// Figure 7 — the statistics module: dataset information plus the
/// performance/quality table of the large-scale experiments.
pub fn statistics(
    dataset: &str,
    sources: usize,
    entities: usize,
    snippets: usize,
    start: storypivot_types::Timestamp,
    end: storypivot_types::Timestamp,
    rows: &[StatRow],
) -> String {
    let mut out = String::from("=== Statistics =========================================\n");
    let _ = writeln!(out, "Dataset     {dataset}");
    let _ = writeln!(out, "# Sources   {sources}");
    let _ = writeln!(out, "# Entities  {entities}");
    let _ = writeln!(out, "# Snippets  {snippets}");
    let _ = writeln!(out, "Start Date  {start}");
    let _ = writeln!(out, "End Date    {end}");
    let _ = writeln!(out, "---------------------------------------------------------");
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:<10} {:>8} {:>14} {:>10}",
        "Dataset", "SI method", "SA method", "# events", "exec (ms/ev)", "F-measure"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:<10} {:>8} {:>14.4} {:>10.3}",
            r.dataset, r.si_method, r.sa_method, r.events, r.exec_ms, r.f_measure
        );
    }
    out
}

/// Membership listing used by the per-source view: which story a
/// snippet belongs to, `None` when unassigned.
pub fn story_of_label(pivot: &StoryPivot, id: SnippetId) -> Option<StoryId> {
    pivot.story_of(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mh17::Mh17Demo;
    use crate::names::PipelineNames;

    fn built() -> Mh17Demo {
        Mh17Demo::build()
    }

    #[test]
    fn document_selection_lists_everything() {
        let demo = built();
        let ingested = vec![true; demo.len()];
        let view = document_selection(&demo.pivot, &demo.documents, &ingested);
        assert!(view.contains("New York Times"));
        assert!(view.contains("Wall Street Journal"));
        assert!(view.contains("online.wsj.com/doc10.html"));
        assert!(view.contains("[x]"));
        assert_eq!(view.matches("[x]").count(), demo.len());
    }

    #[test]
    fn story_overview_shows_digests() {
        let demo = built();
        let names = PipelineNames(&demo.pipeline);
        let view = story_overview(&demo.pivot, &names);
        // The crash story digest features UKR and crash-like terms.
        assert!(view.contains("UKR"), "view:\n{view}");
        assert!(view.contains("New York Times, Wall Street Journal"), "view:\n{view}");
    }

    #[test]
    fn story_information_panel_is_complete() {
        let demo = built();
        let names = PipelineNames(&demo.pipeline);
        let g = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
        let view = story_information(&demo.pivot, g, &names);
        assert!(view.contains("Start Date  2014-07-17"));
        assert!(view.contains("End Date    2014-09-12"));
        assert!(view.contains("aligning"));
    }

    #[test]
    fn stories_per_source_lists_snippets() {
        let demo = built();
        let names = PipelineNames(&demo.pipeline);
        let view = stories_per_source(&demo.pivot, demo.nyt, &names);
        assert!(view.contains("Jetliner Explodes Over Ukraine"));
        assert!(view.contains("snippets"));
        // Gaza story is a separate story in the NYT lane.
        assert!(view.contains("Gaza") || view.contains("Investigation in Gaza"));
    }

    #[test]
    fn snippet_information_resolves_names() {
        let demo = built();
        let names = PipelineNames(&demo.pipeline);
        let view = snippet_information(&demo.pivot, demo.crash_snippet().unwrap(), &names);
        assert!(view.contains("Source      New York Times"));
        assert!(view.contains("Timestamp   2014-07-17"));
        assert!(view.contains("UKR"));
        assert!(view.contains("Event Type  accident"));
        assert!(view.contains("Story"));
    }

    #[test]
    fn snippets_per_story_has_both_lanes() {
        let demo = built();
        let names = PipelineNames(&demo.pipeline);
        let g = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
        let view = snippets_per_story(&demo.pivot, g, &names);
        assert!(view.contains("New York Times:"));
        assert!(view.contains("Wall Street Journal:"));
        assert!(view.contains("align"));
    }

    #[test]
    fn missing_ids_render_gracefully() {
        let demo = built();
        let names = PipelineNames(&demo.pipeline);
        let view = snippet_information(&demo.pivot, SnippetId::new(9999), &names);
        assert!(view.contains("not found"));
        let view = snippets_per_story(&demo.pivot, GlobalStoryId::new(9999), &names);
        assert!(view.contains("not found"));
    }

    #[test]
    fn statistics_module_renders_rows() {
        let rows = vec![StatRow {
            dataset: "GDELT".into(),
            si_method: "temporal".into(),
            sa_method: "full".into(),
            events: 10_000,
            exec_ms: 0.0451,
            f_measure: 0.91,
        }];
        let view = statistics(
            "GDELT-like",
            50,
            500,
            10_000,
            storypivot_types::Timestamp::from_ymd(2014, 6, 1),
            storypivot_types::Timestamp::from_ymd(2014, 12, 1),
            &rows,
        );
        assert!(view.contains("# Sources   50"));
        assert!(view.contains("temporal"));
        assert!(view.contains("0.910"));
        assert!(view.contains("2014-12-01"));
    }
}

/// "Why" panel: explain a snippet's assignment (paper §4.2.1 — the demo
/// exists to show *why* the algorithms make their decisions). Renders
/// the strongest supporting and contesting neighbors plus the
/// cross-source counterparts.
pub fn why_snippet(
    pivot: &StoryPivot,
    id: SnippetId,
    names: &dyn NameSource,
) -> String {
    use storypivot_core::explain::{explain_assignment, explain_counterparts};
    let Some(ex) = explain_assignment(pivot, id, 3) else {
        return format!("snippet {id}: not found\n");
    };
    let mut out = String::new();
    let _ = writeln!(out, "--- Why is {id} where it is? ---");
    if let Some(story) = ex.story {
        let _ = writeln!(out, "Assigned to story {story}");
    }
    let headline = |m: SnippetId| -> String {
        pivot
            .store()
            .get(m)
            .map(|s| s.content.headline.clone())
            .unwrap_or_default()
    };
    let _ = writeln!(out, "Supporting evidence (same story):");
    for n in &ex.supporting {
        let _ = writeln!(
            out,
            "    {} sim={:.2} (entities {:.2}, description {:.2}, type {:.2}; mostly {})  {}",
            n.snippet, n.sim.combined, n.sim.entity, n.sim.term, n.sim.event,
            n.sim.dominant(), headline(n.snippet)
        );
    }
    if ex.supporting.is_empty() {
        let _ = writeln!(out, "    (none — the snippet opened its own story)");
    }
    let _ = writeln!(out, "Closest other-story snippets (not matched):");
    for n in &ex.contesting {
        let story = n.story.map(|s| s.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "    {} in {} sim={:.2} (mostly {})  {}",
            n.snippet, story, n.sim.combined, n.sim.dominant(), headline(n.snippet)
        );
    }
    let counterparts = explain_counterparts(pivot, id, 3);
    if !counterparts.is_empty() {
        let _ = writeln!(out, "Cross-source counterparts (why it aligns):");
        for n in counterparts {
            let src = pivot
                .store()
                .source(n.source)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| n.source.to_string());
            let _ = writeln!(
                out,
                "    {} from {} sim={:.2}  {}",
                n.snippet, src, n.sim.combined, headline(n.snippet)
            );
        }
    }
    let _ = names; // names reserved for future entity-level detail
    out
}

/// A small ASCII line chart for the statistics module's two panels
/// (Figure 7 plots "Execution Time" and "F-Measure" against `# events`).
/// Each series is one row of column bars; values are scaled to the
/// global maximum.
pub fn ascii_chart(title: &str, x_labels: &[String], series: &[(String, Vec<f64>)]) -> String {
    const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    let _ = writeln!(out, "--- {title} ---");
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max);
    let name_width = series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, values) in series {
        let bars: String = values
            .iter()
            .map(|&v| {
                if max <= 0.0 {
                    BARS[0]
                } else {
                    let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                    BARS[idx.min(BARS.len() - 1)]
                }
            })
            .collect();
        let peak = values.iter().copied().fold(0.0f64, f64::max);
        let _ = writeln!(out, "{name:>name_width$} |{bars}|  max {peak:.3}");
    }
    if !x_labels.is_empty() {
        let _ = writeln!(
            out,
            "{:>name_width$}  {} .. {}",
            "x:",
            x_labels.first().map(String::as_str).unwrap_or(""),
            x_labels.last().map(String::as_str).unwrap_or("")
        );
    }
    out
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn chart_scales_and_labels() {
        let x: Vec<String> = ["1k", "2k", "4k"].iter().map(|s| s.to_string()).collect();
        let chart = ascii_chart(
            "Execution Time (ms/event)",
            &x,
            &[
                ("temporal".to_string(), vec![0.02, 0.03, 0.05]),
                ("complete".to_string(), vec![0.04, 0.07, 0.12]),
            ],
        );
        assert!(chart.contains("Execution Time"));
        assert!(chart.contains("temporal"));
        assert!(chart.contains('█'), "the max value renders a full bar:\n{chart}");
        assert!(chart.contains("1k .. 4k"));
        assert!(chart.contains("max 0.120"));
    }

    #[test]
    fn empty_and_zero_series_render() {
        let chart = ascii_chart("empty", &[], &[("none".into(), vec![0.0, 0.0])]);
        assert!(chart.contains("none"));
        assert!(!chart.contains('█'));
    }
}
