//! English stopword filtering.
//!
//! Description terms like "the" or "said" carry no story-discriminating
//! signal; they are removed before TF-IDF weighting. The list is a
//! compact news-oriented superset of the classic SMART stopwords.

/// Sorted list of stopwords (normalized forms, see
/// [`crate::tokenize::tokenize`]). Kept sorted so membership is a binary
/// search over static data — no allocation, no lazy hashing.
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "ago", "all", "also", "am", "among", "an",
    "and", "any", "are", "as", "at", "back", "be", "because", "been", "before", "being", "below",
    "between", "both", "but", "by", "came", "can", "cannot", "come", "could", "day", "days", "did",
    "do", "does", "doing", "down", "during", "each", "early", "even", "every", "few", "first",
    "for", "from", "further", "get", "go", "going", "got", "had", "has", "have", "having", "he",
    "her", "here", "hers", "herself", "him", "himself", "his", "how", "however", "i", "if", "in",
    "into", "is", "it", "its", "itself", "just", "last", "late", "later", "latest", "less", "like",
    "made", "make", "many", "may", "me", "might", "monday", "more", "most", "mr", "mrs", "ms",
    "much", "must", "my", "myself", "near", "new", "news", "next", "no", "nor", "not", "now", "of",
    "off", "officials", "on", "once", "one", "only", "or", "other", "our", "ours", "ourselves",
    "out", "over", "own", "part", "per", "put", "said", "same", "say", "says", "see", "she",
    "should", "since", "so", "some", "still", "such", "take", "than", "that", "the", "their",
    "theirs", "them", "themselves", "then", "there", "these", "they", "this", "those", "three",
    "through", "time", "times", "to", "today", "told", "too", "two", "under", "until", "up",
    "upon", "us", "use", "used", "very", "was", "way", "we", "week", "weeks", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "will", "with", "within", "without",
    "would", "year", "years", "yesterday", "yet", "you", "your", "yours", "yourself",
];

/// Whether `word` (already normalized/lowercased) is a stopword.
///
/// ```
/// use storypivot_text::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("crash"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Number of stopwords in the built-in list (for diagnostics).
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduplicated() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{:?} must sort before {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "of", "said", "a", "yourself"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["crash", "plane", "ukraine", "missile", "sanctions", "investigation"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn lookup_is_exact_not_prefix() {
        assert!(is_stopword("a"));
        assert!(!is_stopword("ab"));
        assert!(!is_stopword(""));
    }
}
