//! A minimal readiness poller over `poll(2)`, plus a wake channel.
//!
//! The serving layer multiplexes thousands of nonblocking sockets onto
//! a fixed pool of I/O workers. The only primitive that requires is
//! "block until one of these fds is readable/writable, or a timeout
//! elapses" — exactly `poll(2)`. There is no crates.io registry in this
//! build environment (no `mio`, no `libc`), so this module carries the
//! one `extern "C"` declaration the workspace needs, confined behind a
//! safe slice-based wrapper. It is the sole `#[allow(unsafe_code)]`
//! island in an otherwise `deny(unsafe_code)` crate.
//!
//! Two pieces:
//!
//! * [`Poller`] — a reusable registration set: `clear` + `register`
//!   each tick, then [`Poller::poll`] and iterate [`Poller::events`].
//!   Registration is rebuilt per tick (O(fds) of plain memory writes),
//!   which keeps the API trivially safe: no fd lifetime is retained
//!   across calls.
//! * [`wake_pair`] — a loopback-TCP socketpair acting as a cross-thread
//!   wake channel: [`Waker::wake`] is a nonblocking one-byte write any
//!   thread can call, and the [`WakeReceiver`]'s fd is registered in a
//!   `Poller` so a sleeping worker wakes. Built on `std` TCP because
//!   `pipe(2)` would need more FFI surface for no gain.

use std::io;
use std::time::Duration;

/// Interest in readability.
pub const READABLE: u8 = 0b01;
/// Interest in writability.
pub const WRITABLE: u8 = 0b10;

/// One ready fd, as reported by [`Poller::events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen token passed to [`Poller::register`].
    pub token: usize,
    /// Readable — includes hangup and error conditions, so a `read`
    /// will return promptly (with 0 or an error) instead of blocking.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state.
    pub hangup: bool,
}

#[cfg(unix)]
mod sys {
    use std::io;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// Mirrors `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    /// Safe wrapper: the slice bounds are the only invariant `poll(2)`
    /// needs, and the kernel only ever writes `revents` in place.
    #[allow(unsafe_code)]
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::io;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling requires a unix platform",
        ))
    }
}

/// A reusable `poll(2)` registration set.
///
/// Usage per tick: [`Poller::clear`], [`Poller::register`] every fd of
/// interest, [`Poller::poll`], then iterate [`Poller::events`].
#[derive(Default)]
pub struct Poller {
    fds: Vec<sys::PollFd>,
    tokens: Vec<usize>,
}

impl Poller {
    /// An empty registration set.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Drop all registrations (retains capacity).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Register `fd` with a caller-chosen `token` (returned in the
    /// matching [`Event`]) and an interest mask of [`READABLE`] and/or
    /// [`WRITABLE`] bits.
    pub fn register(&mut self, fd: i32, token: usize, interest: u8) {
        let mut events = 0i16;
        if interest & READABLE != 0 {
            events |= sys::POLLIN;
        }
        if interest & WRITABLE != 0 {
            events |= sys::POLLOUT;
        }
        self.fds.push(sys::PollFd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Number of registered fds.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether no fds are registered.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely). Returns the number of
    /// ready fds; `Ok(0)` on timeout or signal interruption.
    pub fn poll(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        match sys::poll_fds(&mut self.fds, timeout_ms) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// The fds reported ready by the last [`Poller::poll`].
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        self.fds
            .iter()
            .zip(self.tokens.iter())
            .filter(|(pfd, _)| pfd.revents != 0)
            .map(|(pfd, &token)| {
                let err = pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                Event {
                    token,
                    readable: pfd.revents & sys::POLLIN != 0 || err,
                    writable: pfd.revents & sys::POLLOUT != 0 || err,
                    hangup: err,
                }
            })
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("fds", &self.fds.len()).finish()
    }
}

/// The sending half of a wake channel; cloneable and usable from any
/// thread.
#[derive(Clone)]
pub struct Waker {
    tx: std::sync::Arc<std::net::TcpStream>,
}

impl Waker {
    /// Nudge the receiving poller awake. Never blocks: if the wake
    /// socket's buffer is full the receiver is already awake-pending,
    /// so a dropped byte is harmless.
    pub fn wake(&self) {
        use std::io::Write;
        match (&*self.tx).write(&[1u8]) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(_) => {} // peer gone: the poller is shutting down
        }
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

/// The receiving half of a wake channel: register its fd for
/// [`READABLE`] and [`WakeReceiver::drain`] when it fires.
pub struct WakeReceiver {
    rx: std::net::TcpStream,
}

impl WakeReceiver {
    /// The fd to register in a [`Poller`].
    #[cfg(unix)]
    pub fn fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// The fd to register in a [`Poller`] (unsupported off unix).
    #[cfg(not(unix))]
    pub fn fd(&self) -> i32 {
        -1
    }

    /// Consume all pending wake bytes so the fd goes quiet until the
    /// next [`Waker::wake`].
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return,        // sender closed
                Ok(_) => continue,      // keep draining
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }
}

impl std::fmt::Debug for WakeReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WakeReceiver")
    }
}

/// Build a connected wake channel over a loopback TCP socketpair. Both
/// ends are nonblocking with Nagle disabled so a wake is visible to the
/// poller immediately.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let tx = std::net::TcpStream::connect(addr)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    rx.set_nodelay(true)?;
    Ok((
        Waker {
            tx: std::sync::Arc::new(tx),
        },
        WakeReceiver { rx },
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn timeout_returns_zero_without_events() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut poller = Poller::new();
        poller.register(rx.fd(), 7, READABLE);
        let start = Instant::now();
        let n = poller.poll(Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(poller.events().count(), 0);
    }

    #[test]
    fn wake_makes_receiver_readable_and_drain_quiets_it() {
        let (waker, rx) = wake_pair().unwrap();
        let mut poller = Poller::new();
        poller.register(rx.fd(), 42, READABLE);
        waker.wake();
        let n = poller.poll(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let ev: Vec<Event> = poller.events().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, 42);
        assert!(ev[0].readable);
        rx.drain();
        poller.clear();
        poller.register(rx.fd(), 42, READABLE);
        let n = poller.poll(Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "drained wake channel is quiet again");
    }

    #[test]
    fn wake_from_another_thread_unblocks_poll() {
        let (waker, rx) = wake_pair().unwrap();
        let mut poller = Poller::new();
        poller.register(rx.fd(), 0, READABLE);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let n = poller.poll(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1);
        t.join().unwrap();
    }

    #[test]
    fn writable_interest_reports_writable_socket() {
        let (waker, rx) = wake_pair().unwrap();
        let _keep = waker;
        let mut poller = Poller::new();
        poller.register(rx.fd(), 3, WRITABLE);
        let n = poller.poll(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        let ev: Vec<Event> = poller.events().collect();
        assert!(ev[0].writable, "an idle TCP socket is writable");
    }

    #[test]
    fn many_wakes_collapse_into_one_drain() {
        let (waker, rx) = wake_pair().unwrap();
        for _ in 0..1000 {
            waker.wake();
        }
        rx.drain();
        let mut poller = Poller::new();
        poller.register(rx.fd(), 0, READABLE);
        assert_eq!(poller.poll(Some(Duration::from_millis(20))).unwrap(), 0);
    }
}
