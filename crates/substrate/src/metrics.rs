//! A zero-dependency, lock-cheap metrics registry.
//!
//! The serving layer needs three metric kinds — monotonic [`Counter`]s,
//! [`Gauge`]s, and latency [`HistogramMetric`]s (backed by the
//! log-bucketed [`crate::timing::Histogram`]) — grouped into *families*
//! (one name + help + kind) whose *series* are distinguished by label
//! sets, and rendered as a Prometheus-style text exposition. What it
//! deliberately does not need: a background thread, a global, or a
//! lock on the hot path. A counter increment is one relaxed atomic
//! add; a histogram record is one uncontended mutex plus a couple of
//! shifts.
//!
//! Handles are cheap clones detached from the registry: registering
//! the same `(name, labels)` twice returns a handle to the same
//! underlying series, so independent components can share a metric by
//! name alone. A [`Registry::disabled`] registry hands out no-op
//! handles whose operations compile down to a single branch on a
//! `None` — the "metrics off" configuration costs neither atomics nor
//! clock reads (timers skip `Instant::now` entirely).
//!
//! Cross-shard aggregation goes through [`Snapshot`]: each shard owns
//! its own registry, snapshots are merged (counters and gauges add,
//! histograms bucket-merge — preserving quantiles exactly at bucket
//! resolution), and the merged snapshot renders once. This is how the
//! `METRICS` wire opcode produces one engine-wide exposition from N
//! independent shard registries.
//!
//! Naming scheme (see DESIGN.md §8): every family is prefixed
//! `storypivot_`, counters end in `_total`, durations are nanosecond
//! histograms ending in `_duration_ns`, and per-shard series carry a
//! `shard="N"` label.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::timing::Histogram;

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A monotonically increasing `u64` (rendered as `counter`).
    Counter,
    /// A signed instantaneous value (rendered as `gauge`).
    Gauge,
    /// A log-bucketed value distribution (rendered as `summary` with
    /// `quantile` series plus `_sum`/`_count`).
    Histogram,
}

impl Kind {
    fn exposition_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "summary",
        }
    }
}

#[derive(Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Mutex<Histogram>>),
}

struct Family {
    help: String,
    kind: Kind,
    /// Series keyed by their rendered label set (`""` for unlabeled,
    /// `shard="0"` style otherwise) — `BTreeMap` keeps the exposition
    /// deterministic.
    series: BTreeMap<String, Slot>,
}

struct Inner {
    families: Mutex<BTreeMap<String, Family>>,
}

/// A handle-based metrics registry. Cloning shares the same registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Render a label slice (`[("shard", "0")]`) into its canonical series
/// key: keys sorted, values escaped, `key="value"` joined by commas.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort();
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit()))
}

impl Registry {
    /// A live registry: handles record, [`Registry::render`] exposes.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                families: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op, and
    /// [`Registry::render`] returns an empty exposition. This is the
    /// "metrics compiled out" configuration the overhead benchmark
    /// compares against.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn slot(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Option<Slot> {
        let inner = self.inner.as_ref()?;
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut families = inner.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} registered as {:?} and {kind:?}",
            family.kind
        );
        let slot = family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Slot::Counter(Arc::new(AtomicU64::new(0))),
                Kind::Gauge => Slot::Gauge(Arc::new(AtomicI64::new(0))),
                Kind::Histogram => Slot::Histogram(Arc::new(Mutex::new(Histogram::new()))),
            });
        Some(slot.clone())
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.slot(name, help, Kind::Counter, labels) {
            Some(Slot::Counter(c)) => Counter(Some(c)),
            _ => Counter(None),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.slot(name, help, Kind::Gauge, labels) {
            Some(Slot::Gauge(g)) => Gauge(Some(g)),
            _ => Gauge(None),
        }
    }

    /// Register (or look up) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramMetric {
        self.histogram_with(name, help, &[])
    }

    /// Register (or look up) a labeled histogram series.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramMetric {
        match self.slot(name, help, Kind::Histogram, labels) {
            Some(Slot::Histogram(h)) => HistogramMetric(Some(h)),
            _ => HistogramMetric(None),
        }
    }

    /// Copy the registry's current values into a mergeable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::default();
        let Some(inner) = self.inner.as_ref() else {
            return out;
        };
        let families = inner.families.lock().unwrap_or_else(|e| e.into_inner());
        for (name, family) in families.iter() {
            let mut snap = SnapFamily {
                help: family.help.clone(),
                kind: family.kind,
                series: BTreeMap::new(),
            };
            for (labels, slot) in &family.series {
                let value = match slot {
                    Slot::Counter(c) => SnapValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => SnapValue::Gauge(g.load(Ordering::Relaxed)),
                    Slot::Histogram(h) => {
                        SnapValue::Histogram(h.lock().unwrap_or_else(|e| e.into_inner()).clone())
                    }
                };
                snap.series.insert(labels.clone(), value);
            }
            out.families.insert(name.clone(), snap);
        }
        out
    }

    /// Render the current values as a Prometheus-style text exposition.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// A monotonic counter handle (no-op when detached).
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// An instantaneous signed gauge handle (no-op when detached).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A distribution handle over [`Histogram`] (no-op when detached).
/// The serving layer records nanoseconds, but values are dimensionless.
#[derive(Clone, Default)]
pub struct HistogramMetric(Option<Arc<Mutex<Histogram>>>);

impl HistogramMetric {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap_or_else(|e| e.into_inner()).record(v);
        }
    }

    /// Start a timer that records elapsed nanoseconds when dropped.
    /// A detached handle returns a timer that never reads the clock.
    #[inline]
    pub fn start(&self) -> Stopwatch {
        Stopwatch(self.0.as_ref().map(|h| (Arc::clone(h), Instant::now())))
    }

    /// Number of recorded observations (0 when detached).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.lock().unwrap_or_else(|e| e.into_inner()).count())
    }

    /// Quantile `q` of the recorded values (0 when detached/empty).
    pub fn percentile(&self, q: f64) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.lock().unwrap_or_else(|e| e.into_inner()).percentile(q))
    }
}

/// Records elapsed nanoseconds into its histogram on drop; see
/// [`HistogramMetric::start`].
pub struct Stopwatch(Option<(Arc<Mutex<Histogram>>, Instant)>);

impl Stopwatch {
    /// Drop the timer without recording anything.
    pub fn discard(mut self) {
        self.0 = None;
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if let Some((h, started)) = self.0.take() {
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            h.lock().unwrap_or_else(|e| e.into_inner()).record(ns);
        }
    }
}

// ---- snapshots --------------------------------------------------------

/// One series' captured value.
#[derive(Debug, Clone)]
enum SnapValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct SnapFamily {
    help: String,
    kind: Kind,
    series: BTreeMap<String, SnapValue>,
}

/// A point-in-time copy of a registry's values, mergeable across
/// registries (one per shard) and renderable as a text exposition.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    families: BTreeMap<String, SnapFamily>,
}

impl Snapshot {
    /// Fold another snapshot into this one: counters and gauges add,
    /// histograms bucket-merge. Families present only in `other` are
    /// copied over; a kind mismatch on the same name keeps `self`'s
    /// side (and is a programming error caught in debug builds).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.families {
            let Some(ours) = self.families.get_mut(name) else {
                self.families.insert(name.clone(), theirs.clone());
                continue;
            };
            debug_assert_eq!(ours.kind, theirs.kind, "kind mismatch merging {name}");
            if ours.kind != theirs.kind {
                continue;
            }
            for (labels, value) in &theirs.series {
                match (ours.series.get_mut(labels), value) {
                    (Some(SnapValue::Counter(a)), SnapValue::Counter(b)) => {
                        *a = a.saturating_add(*b)
                    }
                    (Some(SnapValue::Gauge(a)), SnapValue::Gauge(b)) => *a = a.saturating_add(*b),
                    (Some(SnapValue::Histogram(a)), SnapValue::Histogram(b)) => a.merge(b),
                    (None, v) => {
                        ours.series.insert(labels.clone(), v.clone());
                    }
                    _ => debug_assert!(false, "series kind mismatch merging {name}"),
                }
            }
        }
    }

    /// The captured counter value for `(name, labels)`, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            SnapValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The captured gauge value for `(name, labels)`, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            SnapValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The captured histogram for `(name, labels)`, if present.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            SnapValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Render as a Prometheus-style text exposition: `# HELP` and
    /// `# TYPE` comments per family, one `name{labels} value` line per
    /// series. Histograms render as summaries — `quantile` series for
    /// p50/p95/p99 plus `_sum`, `_count`, and a `_max` gauge line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            out.push_str(&format!("# HELP {name} {}\n", family.help.replace('\n', " ")));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.exposition_name()));
            for (labels, value) in &family.series {
                match value {
                    SnapValue::Counter(v) => {
                        out.push_str(&render_line(name, labels, &[], &v.to_string()))
                    }
                    SnapValue::Gauge(v) => {
                        out.push_str(&render_line(name, labels, &[], &v.to_string()))
                    }
                    SnapValue::Histogram(h) => {
                        for (q, qs) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                            out.push_str(&render_line(
                                name,
                                labels,
                                &[("quantile", qs)],
                                &h.percentile(q).to_string(),
                            ));
                        }
                        let sum_name = format!("{name}_sum");
                        let count_name = format!("{name}_count");
                        let mean = h.mean();
                        let sum = (mean * h.count() as f64).round() as u64;
                        out.push_str(&render_line(&sum_name, labels, &[], &sum.to_string()));
                        out.push_str(&render_line(
                            &count_name,
                            labels,
                            &[],
                            &h.count().to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn render_line(name: &str, labels: &str, extra: &[(&str, &str)], value: &str) -> String {
    let extra_rendered = label_key(extra);
    let all = match (labels.is_empty(), extra_rendered.is_empty()) {
        (true, true) => String::new(),
        (false, true) => labels.to_string(),
        (true, false) => extra_rendered,
        (false, false) => format!("{labels},{extra_rendered}"),
    };
    if all.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{all}}} {value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_record_and_render() {
        let reg = Registry::new();
        let c = reg.counter("storypivot_test_total", "things counted");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = reg.gauge_with("storypivot_depth", "queue depth", &[("shard", "0")]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);

        let h = reg.histogram("storypivot_lat_ns", "latency");
        for v in [10u64, 100, 1_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);

        let text = reg.render();
        assert!(text.contains("# TYPE storypivot_test_total counter"));
        assert!(text.contains("storypivot_test_total 5"));
        assert!(text.contains("# TYPE storypivot_depth gauge"));
        assert!(text.contains("storypivot_depth{shard=\"0\"} 5"));
        assert!(text.contains("# TYPE storypivot_lat_ns summary"));
        assert!(text.contains("storypivot_lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("storypivot_lat_ns_count 3"));
    }

    #[test]
    fn same_name_and_labels_share_a_series() {
        let reg = Registry::new();
        let a = reg.counter("storypivot_shared_total", "shared");
        let b = reg.counter("storypivot_shared_total", "shared");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Different labels are distinct series.
        let c = reg.counter_with("storypivot_shared_total", "shared", &[("shard", "1")]);
        c.inc();
        assert_eq!(c.get(), 1);
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn disabled_registry_is_a_cheap_noop() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("storypivot_off_total", "off");
        c.inc();
        assert_eq!(c.get(), 0);
        let h = reg.histogram("storypivot_off_ns", "off");
        let t = h.start();
        drop(t);
        h.record(5);
        assert_eq!(h.count(), 0);
        assert_eq!(reg.render(), "");
    }

    #[test]
    fn stopwatch_records_elapsed_and_discard_skips() {
        let reg = Registry::new();
        let h = reg.histogram("storypivot_sw_ns", "stopwatch");
        {
            let _t = h.start();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        h.start().discard();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_merge_sums_and_bucket_merges() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("storypivot_m_total", "m").add(3);
        b.counter("storypivot_m_total", "m").add(4);
        a.gauge("storypivot_m_depth", "d").set(2);
        b.gauge("storypivot_m_depth", "d").set(5);
        let ha = a.histogram("storypivot_m_ns", "ns");
        let hb = b.histogram("storypivot_m_ns", "ns");
        let mut combined = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &ha } else { &hb };
            target.record(v * 13 % 2048);
            combined.record(v * 13 % 2048);
        }
        // A family only one side has must survive the merge.
        b.counter("storypivot_only_b_total", "b only").add(9);

        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter_value("storypivot_m_total", &[]), Some(7));
        assert_eq!(snap.gauge_value("storypivot_m_depth", &[]), Some(7));
        assert_eq!(snap.counter_value("storypivot_only_b_total", &[]), Some(9));
        let merged = snap.histogram_value("storypivot_m_ns", &[]).unwrap();
        assert_eq!(merged.count(), combined.count());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(merged.percentile(q), combined.percentile(q));
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("storypivot_esc_total", "esc", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = reg.render();
        assert!(text.contains("storypivot_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
