//! E5 — ingestion of the realistic out-of-order delivery stream vs the
//! event-time-sorted stream (§2.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storypivot_bench::{corpus_fixed_period, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;

fn bench(c: &mut Criterion) {
    let corpus = corpus_fixed_period(800, 8, 19);
    let sorted = corpus.snippets_by_event_time();
    let mut group = c.benchmark_group("e5_out_of_order");
    group.sample_size(10);
    for (name, stream) in [("delivery_order", &corpus.snippets), ("event_time_order", &sorted)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), stream, |b, stream| {
            b.iter(|| {
                let mut pivot = pivot_for(&corpus, PivotConfig::temporal(OMEGA));
                for s in stream.iter() {
                    pivot.ingest(s.clone()).unwrap();
                }
                pivot.align();
                pivot.global_stories().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
