//! Engine checkpointing: persist a [`StoryPivot`]'s full state (event
//! store + story assignments + id allocators) and restore it later.
//!
//! A repository like GDELT is updated "over fixed time intervals (e.g.,
//! daily)" (paper §1); a long-running pivot therefore needs restarts
//! without replaying months of history. The checkpoint contains the
//! store snapshot plus, per source, the snippet→story assignment and
//! the story-id allocator position. Story aggregates (centroids,
//! sketches, signatures, lifespans) are *recomputed* from the snippets
//! on load — they are derived state, and rebuilding them keeps the
//! format small and version-stable.
//!
//! The configuration is **not** stored: the caller supplies it on load
//! (configs contain policy, not data; loading under a different config
//! is legal and simply applies the new policy from there on).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "SPVC" | version u32 | store_len u64 | store snapshot
//!   | ident_count u32
//!   | per ident: source u32, next_story u32, n u32, (snippet u32, story u32)×n
//!   | snippet_ids u32 | doc_ids u32 | source_ids u32
//! ```

use storypivot_store::codec::{decode_store, encode_store};
use storypivot_types::ids::IdGen;
use storypivot_types::{Error, Result, SnippetId, SourceId, StoryId};

use crate::identify::Identifier;
use crate::pivot::StoryPivot;

/// Checkpoint file magic.
pub const MAGIC: &[u8; 4] = b"SPVC";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

fn get_u32(buf: &mut &[u8], what: &str) -> Result<u32> {
    if buf.len() < 4 {
        return Err(Error::Codec(format!("truncated checkpoint at {what}")));
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn get_u64(buf: &mut &[u8], what: &str) -> Result<u64> {
    if buf.len() < 8 {
        return Err(Error::Codec(format!("truncated checkpoint at {what}")));
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

impl StoryPivot {
    /// Serialize the engine's full state.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let timer = self.metrics.checkpoint_save_duration.start();
        let store_bytes = encode_store(&self.store);
        let mut out = Vec::with_capacity(store_bytes.len() + 64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(store_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&store_bytes);

        let mut sources: Vec<SourceId> = self.identifiers.keys().copied().collect();
        sources.sort_unstable();
        out.extend_from_slice(&(sources.len() as u32).to_le_bytes());
        for source in sources {
            let ident = &self.identifiers[&source];
            out.extend_from_slice(&source.raw().to_le_bytes());
            out.extend_from_slice(&ident.next_story_id_raw().to_le_bytes());
            let mut assignments: Vec<(SnippetId, StoryId)> = ident.assignments().collect();
            assignments.sort_unstable();
            out.extend_from_slice(&(assignments.len() as u32).to_le_bytes());
            for (snippet, story) in assignments {
                out.extend_from_slice(&snippet.raw().to_le_bytes());
                out.extend_from_slice(&story.raw().to_le_bytes());
            }
        }
        out.extend_from_slice(&self.snippet_ids.allocated().to_le_bytes());
        out.extend_from_slice(&self.doc_ids.allocated().to_le_bytes());
        out.extend_from_slice(&self.source_ids.allocated().to_le_bytes());
        drop(timer);
        out
    }

    /// Restore an engine from a checkpoint under the given
    /// configuration. Story aggregates are rebuilt deterministically
    /// (members are folded in `(story, snippet)` order); alignment is
    /// not part of the checkpoint — call [`StoryPivot::align`] after
    /// loading.
    pub fn load_checkpoint(config: crate::config::PivotConfig, mut buf: &[u8]) -> Result<Self> {
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(Error::Codec("not a StoryPivot checkpoint".into()));
        }
        buf = &buf[4..];
        let version = get_u32(&mut buf, "version")?;
        if version != VERSION {
            return Err(Error::Codec(format!(
                "unsupported checkpoint version {version} (expected {VERSION})"
            )));
        }
        let store_len = get_u64(&mut buf, "store length")? as usize;
        if buf.len() < store_len {
            return Err(Error::Codec("truncated checkpoint store".into()));
        }
        let (store_bytes, rest) = buf.split_at(store_len);
        buf = rest;
        let store = decode_store(store_bytes)?;

        let mut pivot = StoryPivot::try_new(config)?;
        pivot.store = store;

        let ident_count = get_u32(&mut buf, "identifier count")?;
        for _ in 0..ident_count {
            let source = SourceId::new(get_u32(&mut buf, "source id")?);
            if pivot.store.source(source).is_none() {
                return Err(Error::Codec(format!(
                    "checkpoint references unregistered source {source}"
                )));
            }
            let next_story = get_u32(&mut buf, "story allocator")?;
            let n = get_u32(&mut buf, "assignment count")?;
            let mut ident = Identifier::new(
                source,
                pivot.config.identify.clone(),
                pivot.config.sketch,
            );
            let mut assignments = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let snippet = SnippetId::new(get_u32(&mut buf, "snippet id")?);
                let story = StoryId::new(get_u32(&mut buf, "story id")?);
                assignments.push((snippet, story));
            }
            // Deterministic rebuild order: by (story, snippet).
            assignments.sort_unstable_by_key(|&(s, c)| (c, s));
            for (snippet, story) in assignments {
                let sn = pivot
                    .store
                    .get(snippet)
                    .ok_or_else(|| {
                        Error::Codec(format!("assignment references missing snippet {snippet}"))
                    })?
                    .clone();
                if sn.source != source {
                    return Err(Error::Codec(format!(
                        "snippet {snippet} belongs to {}, not {source}",
                        sn.source
                    )));
                }
                ident.force_assign(&sn, story);
            }
            ident.restore_next_story_id(next_story);
            pivot.identifiers.insert(source, ident);
        }
        pivot.snippet_ids = IdGen::starting_at(get_u32(&mut buf, "snippet allocator")?);
        pivot.doc_ids = IdGen::starting_at(get_u32(&mut buf, "doc allocator")?);
        pivot.source_ids = IdGen::starting_at(get_u32(&mut buf, "source allocator")?);
        if !buf.is_empty() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after checkpoint",
                buf.len()
            )));
        }
        // Every stored snippet must be assigned (else the checkpoint was
        // taken from a corrupt engine).
        pivot.check_invariants()?;
        Ok(pivot)
    }
}

// ---- generation-numbered checkpoint files ----------------------------
//
// A long-running daemon checkpoints *while serving*, so checkpoint
// writes must never be able to destroy the previous good state: each
// checkpoint is a new file `shard{i}.g{generation}.spvc`, written to a
// `.tmp` sibling and atomically renamed into place. Loading walks the
// generations newest-first and skips anything that fails to decode —
// a crash mid-write (or a corrupt disk) costs one generation, not the
// shard. Old generations beyond a small keep-window are pruned after a
// successful write.

/// How many checkpoint generations [`write_generation`] retains.
pub const KEPT_GENERATIONS: u64 = 2;

fn generation_file(shard: usize, generation: u64) -> String {
    format!("shard{shard}.g{generation:010}.spvc")
}

/// Parse `shard{i}.g{generation}.spvc` back into its generation, when
/// the name belongs to `shard`.
fn parse_generation(name: &str, shard: usize) -> Option<u64> {
    let rest = name.strip_prefix(&format!("shard{shard}.g"))?;
    rest.strip_suffix(".spvc")?.parse().ok()
}

/// Atomically persist checkpoint `bytes` as generation `generation` of
/// `shard` under `dir` (created if absent): write `*.tmp`, fsync,
/// rename. A crash at any point leaves either the old generation set or
/// the old set plus the complete new file — never a half-written
/// checkpoint under the real name. Prunes generations older than
/// [`KEPT_GENERATIONS`]. Returns the final path.
pub fn write_generation(
    dir: &std::path::Path,
    shard: usize,
    generation: u64,
    bytes: &[u8],
) -> Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::Io(format!("create {}: {e}", dir.display())))?;
    let final_path = dir.join(generation_file(shard, generation));
    let tmp_path = final_path.with_extension("spvc.tmp");
    {
        let mut f = std::fs::File::create(&tmp_path)
            .map_err(|e| Error::Io(format!("create {}: {e}", tmp_path.display())))?;
        use std::io::Write as _;
        f.write_all(bytes)
            .and_then(|_| f.sync_all())
            .map_err(|e| Error::Io(format!("write {}: {e}", tmp_path.display())))?;
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| Error::Io(format!("rename to {}: {e}", final_path.display())))?;
    // Prune old generations (best effort — a leftover file only wastes
    // space, it can never shadow a newer generation).
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(g) = entry.file_name().to_str().and_then(|n| parse_generation(n, shard)) {
                if g + KEPT_GENERATIONS <= generation {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
    Ok(final_path)
}

/// Load the newest generation of `shard`'s checkpoint that decodes
/// cleanly, returning the restored engine and its generation number.
/// Corrupt or truncated generations are skipped with a warning on
/// stderr; a missing directory or no usable generation is `Ok(None)`
/// (cold start). Leftover `*.tmp` files are ignored by construction.
pub fn load_newest(
    dir: &std::path::Path,
    shard: usize,
    config: crate::config::PivotConfig,
) -> Result<Option<(StoryPivot, u64)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::Io(format!("read {}: {e}", dir.display()))),
    };
    let mut generations: Vec<u64> = entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(|n| parse_generation(n, shard)))
        .collect();
    generations.sort_unstable_by(|a, b| b.cmp(a));
    for generation in generations {
        let path = dir.join(generation_file(shard, generation));
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("checkpoint: skipping unreadable {}: {e}", path.display());
                continue;
            }
        };
        match StoryPivot::load_checkpoint(config.clone(), &bytes) {
            Ok(pivot) => return Ok(Some((pivot, generation))),
            Err(e) => {
                eprintln!("checkpoint: skipping corrupt {}: {e}", path.display());
            }
        }
    }
    Ok(None)
}

/// Raw bytes of the newest generation file of `shard` under `dir`,
/// without decoding them. This is the leader side of replica
/// bootstrap: the follower gets the checkpoint verbatim (and persists
/// the same bytes under the same generation number), so leader and
/// follower agree on the exact durable cursor. Unreadable files are
/// skipped newest-first like [`load_newest`]; a missing directory or
/// no file at all is `Ok(None)` (the shard has never checkpointed —
/// bootstrap from an empty engine instead).
pub fn newest_generation_bytes(
    dir: &std::path::Path,
    shard: usize,
) -> Result<Option<(u64, Vec<u8>)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::Io(format!("read {}: {e}", dir.display()))),
    };
    let mut generations: Vec<u64> = entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(|n| parse_generation(n, shard)))
        .collect();
    generations.sort_unstable_by(|a, b| b.cmp(a));
    for generation in generations {
        let path = dir.join(generation_file(shard, generation));
        match std::fs::read(&path) {
            Ok(bytes) => return Ok(Some((generation, bytes))),
            Err(e) => {
                eprintln!("checkpoint: skipping unreadable {}: {e}", path.display());
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotConfig;
    use storypivot_types::{EntityId, Snippet, SourceKind, TermId, Timestamp, DAY};

    fn populated() -> StoryPivot {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source_with_lag("b", SourceKind::Wire, 3600);
        for day in 0..6i64 {
            for (src, e) in [(a, 1u32), (b, 1), (a, 40)] {
                let id = pivot.fresh_snippet_id();
                let s = Snippet::builder(id, src, Timestamp::from_secs(day * DAY))
                    .doc(pivot.fresh_doc_id())
                    .entity(EntityId::new(e), 1.0)
                    .entity(EntityId::new(e + 1), 1.0)
                    .term(TermId::new(e), 1.0)
                    .build();
                pivot.ingest(s).unwrap();
            }
        }
        pivot
    }

    fn partition(p: &StoryPivot) -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = p
            .global_stories()
            .iter()
            .map(|g| {
                let mut m: Vec<u32> = g.members.iter().map(|&(id, _)| id.raw()).collect();
                m.sort_unstable();
                m
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn checkpoint_round_trips_state_and_results() {
        let mut original = populated();
        original.align();
        let bytes = original.save_checkpoint();

        let mut restored =
            StoryPivot::load_checkpoint(PivotConfig::default(), &bytes).unwrap();
        assert_eq!(restored.store().len(), original.store().len());
        assert_eq!(restored.story_count(), original.story_count());
        // Same per-snippet assignments.
        for sn in original.store().iter() {
            assert_eq!(restored.story_of(sn.id), original.story_of(sn.id));
        }
        // Alignment recomputes to the identical partition.
        restored.align();
        assert_eq!(partition(&restored), partition(&original));
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_engine_continues_ingesting_without_id_collisions() {
        let original = populated();
        let next_before = original.snippet_ids.allocated();
        let bytes = original.save_checkpoint();
        let mut restored = StoryPivot::load_checkpoint(PivotConfig::default(), &bytes).unwrap();
        let fresh = restored.fresh_snippet_id();
        assert_eq!(fresh.raw(), next_before, "allocator resumes past old ids");
        let s = Snippet::builder(fresh, SourceId::new(0), Timestamp::from_secs(999))
            .entity(EntityId::new(1), 1.0)
            .build();
        restored.ingest(s).unwrap();
        // Fresh story ids do not collide with checkpointed ones either.
        let story = restored.fresh_story_id_for(SourceId::new(0)).unwrap();
        assert!(restored.story(story).is_none());
    }

    #[test]
    fn truncated_and_corrupt_checkpoints_error_cleanly() {
        let mut original = populated();
        original.align();
        let bytes = original.save_checkpoint();
        for cut in [0usize, 3, 4, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                StoryPivot::load_checkpoint(PivotConfig::default(), &bytes[..cut]).is_err(),
                "cut {cut} must fail"
            );
        }
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        assert!(StoryPivot::load_checkpoint(PivotConfig::default(), &garbled).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(StoryPivot::load_checkpoint(PivotConfig::default(), &trailing).is_err());
    }

    #[test]
    fn generation_store_writes_atomically_and_loads_newest_valid() {
        let dir = std::env::temp_dir()
            .join(format!("storypivot-ckpt-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold start: nothing there.
        assert!(load_newest(&dir, 0, PivotConfig::default()).unwrap().is_none());

        let mut pivot = populated();
        pivot.align();
        write_generation(&dir, 0, 1, &pivot.save_checkpoint()).unwrap();
        let before_g2 = pivot.store().len();
        // Mutate, checkpoint again at generation 2.
        let id = pivot.fresh_snippet_id();
        let s = Snippet::builder(id, SourceId::new(0), Timestamp::from_secs(7 * DAY))
            .doc(pivot.fresh_doc_id())
            .entity(EntityId::new(1), 1.0)
            .build();
        pivot.ingest(s).unwrap();
        write_generation(&dir, 0, 2, &pivot.save_checkpoint()).unwrap();

        let (restored, generation) = load_newest(&dir, 0, PivotConfig::default())
            .unwrap()
            .expect("a generation must load");
        assert_eq!(generation, 2);
        assert_eq!(restored.store().len(), before_g2 + 1);

        // Corrupt generation 2: the loader must fall back to 1 with a
        // warning instead of failing.
        let g2 = dir.join("shard0.g0000000002.spvc");
        let mut bytes = std::fs::read(&g2).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&g2, &bytes).unwrap();
        let (fallback, generation) = load_newest(&dir, 0, PivotConfig::default())
            .unwrap()
            .expect("generation 1 must still load");
        assert_eq!(generation, 1);
        assert_eq!(fallback.store().len(), before_g2);

        // A stale .tmp (crash mid-write) is invisible to the loader.
        std::fs::write(dir.join("shard0.g0000000009.spvc.tmp"), b"half-written").unwrap();
        assert_eq!(load_newest(&dir, 0, PivotConfig::default()).unwrap().unwrap().1, 1);

        // Other shards' files don't interfere.
        assert!(load_newest(&dir, 1, PivotConfig::default()).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_generation_bytes_ships_verbatim() {
        let dir = std::env::temp_dir()
            .join(format!("storypivot-ckpt-bytes-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Nothing checkpointed yet: None, not an error.
        assert!(newest_generation_bytes(&dir, 0).unwrap().is_none());

        let pivot = populated();
        let bytes = pivot.save_checkpoint();
        write_generation(&dir, 0, 3, &bytes).unwrap();
        write_generation(&dir, 0, 4, &bytes).unwrap();
        let (generation, shipped) = newest_generation_bytes(&dir, 0).unwrap().unwrap();
        assert_eq!(generation, 4);
        assert_eq!(shipped, bytes, "bytes ship verbatim, not re-encoded");
        // The shipped bytes decode to the same engine a local load gets.
        let restored = StoryPivot::load_checkpoint(PivotConfig::default(), &shipped).unwrap();
        assert_eq!(restored.store().len(), pivot.store().len());
        // Other shards see nothing.
        assert!(newest_generation_bytes(&dir, 1).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_pruning_keeps_a_bounded_window() {
        let dir = std::env::temp_dir()
            .join(format!("storypivot-ckpt-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pivot = populated();
        let bytes = pivot.save_checkpoint();
        for generation in 1..=5u64 {
            write_generation(&dir, 0, generation, &bytes).unwrap();
        }
        let kept: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(kept.len() as u64, KEPT_GENERATIONS, "kept {kept:?}");
        assert!(kept.iter().any(|n| n.contains("g0000000005")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_under_a_different_config_applies_new_policy() {
        let original = populated();
        let bytes = original.save_checkpoint();
        // Load under complete matching: state carries over, future
        // ingests use the new mode.
        let mut restored =
            StoryPivot::load_checkpoint(PivotConfig::complete(), &bytes).unwrap();
        assert_eq!(restored.story_count(), original.story_count());
        restored.align();
        assert!(!restored.global_stories().is_empty());
    }
}
