//! Binary codec for snippets, sources, and store snapshots.
//!
//! A hand-rolled, length-prefixed little-endian format (no serde): the
//! encoded forms are compact, versioned, and every decode path checks
//! bounds so corrupt or truncated snapshots surface as
//! [`Error::Codec`] instead of panics.
//!
//! Layout of a snapshot:
//!
//! ```text
//! magic "SPVT" | version u32 | source_count u32 | Source…
//!              | snippet_count u32 | Snippet…
//! ```

use storypivot_substrate::buf::{Buf, BufMut};

use storypivot_types::{
    DocId, EntityId, Error, EventType, Result, Snippet, SnippetContent, SnippetId, Source,
    SourceId, SourceKind, SparseVec, TermId, Timestamp,
};

use crate::event_store::EventStore;

/// Snapshot file magic.
pub const MAGIC: &[u8; 4] = b"SPVT";
/// Current snapshot format version.
pub const VERSION: u32 = 1;

// ---- bounded readers ----------------------------------------------

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::Codec(format!(
            "truncated input: need {n} bytes for {what}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut impl Buf, what: &str) -> Result<u8> {
    need(buf, 1, what)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut impl Buf, what: &str) -> Result<u32> {
    need(buf, 4, what)?;
    Ok(buf.get_u32_le())
}

fn get_i64(buf: &mut impl Buf, what: &str) -> Result<i64> {
    need(buf, 8, what)?;
    Ok(buf.get_i64_le())
}

fn put_str(buf: &mut impl BufMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf, what: &str) -> Result<String> {
    let len = get_u32(buf, what)? as usize;
    need(buf, len, what)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| Error::Codec(format!("invalid utf-8 in {what}")))
}

// ---- sparse vectors ------------------------------------------------

fn put_sparse<K: Copy + Ord + std::fmt::Debug + Into<u32>>(buf: &mut impl BufMut, v: &SparseVec<K>) {
    buf.put_u32_le(v.len() as u32);
    for (k, w) in v.iter() {
        buf.put_u32_le(k.into());
        buf.put_f32_le(w);
    }
}

fn get_sparse<K: Copy + Ord + std::fmt::Debug + From<u32>>(
    buf: &mut impl Buf,
    what: &str,
) -> Result<SparseVec<K>> {
    let n = get_u32(buf, what)? as usize;
    // Each entry is 8 bytes; reject absurd counts before allocating.
    need(buf, n.saturating_mul(8), what)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = K::from(buf.get_u32_le());
        let w = buf.get_f32_le();
        pairs.push((k, w));
    }
    Ok(SparseVec::from_pairs(pairs))
}

// ---- snippets -------------------------------------------------------

/// Append the encoding of `snippet` to `buf`.
pub fn encode_snippet(buf: &mut impl BufMut, snippet: &Snippet) {
    buf.put_u32_le(snippet.id.raw());
    buf.put_u32_le(snippet.source.raw());
    buf.put_u32_le(snippet.doc.raw());
    buf.put_i64_le(snippet.timestamp.secs());
    buf.put_u8(snippet.content.event_type.code());
    put_str(buf, &snippet.content.headline);
    put_sparse(buf, &snippet.content.entities);
    put_sparse(buf, &snippet.content.terms);
}

/// Decode one snippet from `buf`.
pub fn decode_snippet(buf: &mut impl Buf) -> Result<Snippet> {
    let id = SnippetId::new(get_u32(buf, "snippet id")?);
    let source = SourceId::new(get_u32(buf, "snippet source")?);
    let doc = DocId::new(get_u32(buf, "snippet doc")?);
    let timestamp = Timestamp::from_secs(get_i64(buf, "snippet timestamp")?);
    let type_code = get_u8(buf, "snippet event type")?;
    let event_type = EventType::from_code(type_code)
        .ok_or_else(|| Error::Codec(format!("invalid event type code {type_code}")))?;
    let headline = get_str(buf, "snippet headline")?;
    let entities: SparseVec<EntityId> = get_sparse(buf, "snippet entities")?;
    let terms: SparseVec<TermId> = get_sparse(buf, "snippet terms")?;
    Ok(Snippet {
        id,
        source,
        doc,
        timestamp,
        content: SnippetContent {
            entities,
            terms,
            event_type,
            headline,
        },
    })
}

/// Validate one encoded snippet without allocating, advancing `buf`
/// past it. Accepts exactly the inputs [`decode_snippet`] accepts
/// (bounds, event-type code, headline UTF-8) and returns the header
/// fields a router needs — the snippet id and owning source — so the
/// serving layer can shard a frame without materialising the snippet.
pub fn skip_snippet(buf: &mut &[u8]) -> Result<(SnippetId, SourceId)> {
    fn advance<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
        if buf.len() < n {
            return Err(Error::Codec(format!(
                "truncated input: need {n} bytes for {what}, have {}",
                buf.len()
            )));
        }
        let (head, tail) = buf.split_at(n);
        *buf = tail;
        Ok(head)
    }
    fn skip_str(buf: &mut &[u8], what: &str) -> Result<()> {
        let len = get_u32(buf, what)? as usize;
        let raw = advance(buf, len, what)?;
        std::str::from_utf8(raw)
            .map(|_| ())
            .map_err(|_| Error::Codec(format!("invalid utf-8 in {what}")))
    }
    fn skip_sparse(buf: &mut &[u8], what: &str) -> Result<()> {
        let n = get_u32(buf, what)? as usize;
        advance(buf, n.saturating_mul(8), what).map(|_| ())
    }

    let id = SnippetId::new(get_u32(buf, "snippet id")?);
    let source = SourceId::new(get_u32(buf, "snippet source")?);
    advance(buf, 4, "snippet doc")?;
    advance(buf, 8, "snippet timestamp")?;
    let type_code = get_u8(buf, "snippet event type")?;
    EventType::from_code(type_code)
        .ok_or_else(|| Error::Codec(format!("invalid event type code {type_code}")))?;
    skip_str(buf, "snippet headline")?;
    skip_sparse(buf, "snippet entities")?;
    skip_sparse(buf, "snippet terms")?;
    Ok((id, source))
}

// ---- sources --------------------------------------------------------

/// Append the encoding of `source` to `buf`.
pub fn encode_source(buf: &mut impl BufMut, source: &Source) {
    buf.put_u32_le(source.id.raw());
    buf.put_u8(source.kind.code());
    buf.put_i64_le(source.typical_lag);
    put_str(buf, &source.name);
}

/// Decode one source from `buf`.
pub fn decode_source(buf: &mut impl Buf) -> Result<Source> {
    let id = SourceId::new(get_u32(buf, "source id")?);
    let kind_code = get_u8(buf, "source kind")?;
    let kind = SourceKind::from_code(kind_code)
        .ok_or_else(|| Error::Codec(format!("invalid source kind code {kind_code}")))?;
    let typical_lag = get_i64(buf, "source lag")?;
    let name = get_str(buf, "source name")?;
    Ok(Source {
        id,
        name,
        kind,
        typical_lag,
    })
}

// ---- snapshots -------------------------------------------------------

/// Encode a full store snapshot.
pub fn encode_store(store: &EventStore) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + store.len() * 96);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);

    let sources: Vec<&Source> = store.sources().collect();
    buf.put_u32_le(sources.len() as u32);
    for s in sources {
        encode_source(&mut buf, s);
    }

    // Deterministic order: by source, then (timestamp, id).
    buf.put_u32_le(store.len() as u32);
    for sid in store.source_ids() {
        for sn in store.snippets_of_source(sid) {
            encode_snippet(&mut buf, sn);
        }
    }
    buf
}

/// Decode a snapshot back into a store (rebuilding every index).
pub fn decode_store(mut buf: &[u8]) -> Result<EventStore> {
    need(&buf, 4, "magic")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Codec("bad magic: not a StoryPivot snapshot".into()));
    }
    let version = get_u32(&mut buf, "version")?;
    if version != VERSION {
        return Err(Error::Codec(format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }

    let mut store = EventStore::new();
    let source_count = get_u32(&mut buf, "source count")?;
    for _ in 0..source_count {
        store.register_source(decode_source(&mut buf)?)?;
    }
    let snippet_count = get_u32(&mut buf, "snippet count")?;
    for _ in 0..snippet_count {
        store.insert(decode_snippet(&mut buf)?)?;
    }
    if buf.has_remaining() {
        return Err(Error::Codec(format!(
            "{} trailing bytes after snapshot",
            buf.remaining()
        )));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::EventType;

    fn sample_snippet() -> Snippet {
        Snippet::builder(
            SnippetId::new(42),
            SourceId::new(3),
            Timestamp::from_ymd(2014, 7, 17),
        )
        .doc(DocId::new(7))
        .entity(EntityId::new(1), 1.5)
        .entity(EntityId::new(9), 0.25)
        .term(TermId::new(4), 0.7)
        .event_type(EventType::Accident)
        .headline("Jetliner Explodes over Ukraine — früh")
        .build()
    }

    fn sample_store() -> EventStore {
        let mut s = EventStore::new();
        s.register_source(Source::new(SourceId::new(0), "New York Times", SourceKind::Newspaper).with_lag(3600))
            .unwrap();
        s.register_source(Source::new(SourceId::new(3), "Wall Street Journal", SourceKind::Newspaper))
            .unwrap();
        s.insert(sample_snippet()).unwrap();
        s.insert(
            Snippet::builder(SnippetId::new(1), SourceId::new(0), Timestamp::from_secs(-5))
                .headline("")
                .build(),
        )
        .unwrap();
        s
    }

    #[test]
    fn snippet_round_trip() {
        let s = sample_snippet();
        let mut buf = Vec::new();
        encode_snippet(&mut buf, &s);
        let got = decode_snippet(&mut &buf[..]).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn source_round_trip() {
        let s = Source::new(SourceId::new(5), "Blog Ümlaut", SourceKind::Blog).with_lag(-60);
        let mut buf = Vec::new();
        encode_source(&mut buf, &s);
        assert_eq!(decode_source(&mut &buf[..]).unwrap(), s);
    }

    #[test]
    fn store_round_trip_preserves_everything() {
        let store = sample_store();
        let encoded = encode_store(&store);
        let decoded = decode_store(&encoded).unwrap();
        assert_eq!(decoded.len(), store.len());
        assert_eq!(decoded.source_count(), store.source_count());
        assert_eq!(
            decoded.get(SnippetId::new(42)),
            store.get(SnippetId::new(42))
        );
        assert_eq!(decoded.stats(), store.stats());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let store = sample_store();
        let encoded = encode_store(&store);
        for cut in [0, 3, 4, 7, 8, 11, encoded.len() / 2, encoded.len() - 1] {
            let err = decode_store(&encoded[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
            assert!(matches!(err.unwrap_err(), Error::Codec(_)));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut encoded = encode_store(&sample_store());
        encoded[0] = b'X';
        assert!(matches!(decode_store(&encoded), Err(Error::Codec(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut encoded = encode_store(&sample_store());
        encoded[4] = 99;
        let err = decode_store(&encoded).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut encoded = encode_store(&sample_store());
        encoded.push(0xFF);
        let err = decode_store(&encoded).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn invalid_event_type_code_rejected() {
        let s = sample_snippet();
        let mut buf = Vec::new();
        encode_snippet(&mut buf, &s);
        // The event-type byte sits after id+source+doc+timestamp = 20 bytes.
        buf[20] = 200;
        assert!(matches!(decode_snippet(&mut &buf[..]), Err(Error::Codec(_))));
    }

    #[test]
    fn absurd_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.put_u32_le(u32::MAX); // sparse vec claiming 4 billion entries
        let r: Result<SparseVec<EntityId>> = get_sparse(&mut &buf[..], "test");
        assert!(r.is_err());
    }

    #[test]
    fn skip_snippet_agrees_with_decode_snippet() {
        let s = sample_snippet();
        let mut buf = Vec::new();
        encode_snippet(&mut buf, &s);
        buf.extend_from_slice(b"tail");

        let mut walker: &[u8] = &buf;
        let (id, source) = skip_snippet(&mut walker).unwrap();
        assert_eq!(id, s.id);
        assert_eq!(source, s.source);
        assert_eq!(walker, b"tail", "skip stops exactly at the snippet end");

        // Both paths reject the same corruptions.
        for cut in 0..buf.len() - 4 {
            let mut a: &[u8] = &buf[..cut];
            let mut b: &[u8] = &buf[..cut];
            assert_eq!(
                skip_snippet(&mut a).is_err(),
                decode_snippet(&mut b).is_err(),
                "skip/decode disagree at cut {cut}"
            );
        }
        let mut bad = buf.clone();
        bad[20] = 200; // invalid event-type code
        assert!(skip_snippet(&mut &bad[..]).is_err());
        let mut bad = buf.clone();
        bad[25] = 0xFF; // invalid utf-8 inside the headline
        assert_eq!(
            skip_snippet(&mut &bad[..]).is_err(),
            decode_snippet(&mut &bad[..]).is_err()
        );
    }

    #[test]
    fn empty_store_round_trips() {
        let store = EventStore::new();
        let decoded = decode_store(&encode_store(&store)).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.source_count(), 0);
    }
}
