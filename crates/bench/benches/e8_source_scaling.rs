//! E8 — alignment cost as the number of sources grows (Fig 7 inset
//! lists 50 sources).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use storypivot_bench::{corpus_fixed_period, ingest_all, OMEGA};
use storypivot_core::config::PivotConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_source_scaling");
    group.sample_size(10);
    for sources in [4u32, 10, 25] {
        let corpus = corpus_fixed_period(60 * sources as usize, sources, 31);
        let pivot = ingest_all(&corpus, PivotConfig::temporal(OMEGA));
        group.bench_with_input(BenchmarkId::from_parameter(sources), &pivot, |b, pivot| {
            b.iter_batched(
                || pivot.clone(),
                |mut p| {
                    p.align();
                    p.global_stories().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
