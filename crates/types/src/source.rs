//! Data source metadata.
//!
//! A *data source* (paper §2.1) is any digital medium that provides
//! event-based information: newspapers, blogs, magazines, social media.
//! Sources differ in perspective, coverage, and timeliness (§1) — the
//! latter two are modelled explicitly because the alignment phase must
//! tolerate per-source reporting lag.

use std::fmt;

use crate::ids::SourceId;

/// What kind of medium a source is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum SourceKind {
    /// A traditional newspaper (e.g. New York Times, Wall Street Journal).
    #[default]
    Newspaper = 0,
    /// A blog.
    Blog = 1,
    /// A magazine.
    Magazine = 2,
    /// A news wire / agency feed.
    Wire = 3,
    /// Social media.
    Social = 4,
}

impl SourceKind {
    /// All source kinds.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::Newspaper,
        SourceKind::Blog,
        SourceKind::Magazine,
        SourceKind::Wire,
        SourceKind::Social,
    ];

    /// Stable integer code.
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`SourceKind::code`].
    pub const fn from_code(code: u8) -> Option<SourceKind> {
        if (code as usize) < Self::ALL.len() {
            Some(Self::ALL[code as usize])
        } else {
            None
        }
    }

    /// Canonical lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            SourceKind::Newspaper => "newspaper",
            SourceKind::Blog => "blog",
            SourceKind::Magazine => "magazine",
            SourceKind::Wire => "wire",
            SourceKind::Social => "social",
        }
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A registered data source.
#[derive(Debug, Clone, PartialEq)]
pub struct Source {
    /// Unique source id.
    pub id: SourceId,
    /// Display name (e.g. "New York Times").
    pub name: String,
    /// Medium kind.
    pub kind: SourceKind,
    /// Typical reporting lag in seconds: how long after a real-world
    /// event this source usually publishes. Wire services are near zero;
    /// weekly magazines can be days.
    pub typical_lag: i64,
}

impl Source {
    /// A new source with zero typical lag.
    pub fn new<S: Into<String>>(id: SourceId, name: S, kind: SourceKind) -> Self {
        Source {
            id,
            name: name.into(),
            kind,
            typical_lag: 0,
        }
    }

    /// Builder-style setter for the typical lag.
    pub fn with_lag(mut self, lag: i64) -> Self {
        self.typical_lag = lag;
        self
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for k in SourceKind::ALL {
            assert_eq!(SourceKind::from_code(k.code()), Some(k));
        }
        assert_eq!(SourceKind::from_code(99), None);
    }

    #[test]
    fn source_display() {
        let s = Source::new(SourceId::new(1), "New York Times", SourceKind::Newspaper).with_lag(3600);
        assert_eq!(s.to_string(), "New York Times (s1, newspaper)");
        assert_eq!(s.typical_lag, 3600);
    }
}
