//! StoryPivot core: story identification, story alignment, story
//! refinement, and the dynamic pipeline tying them together.
//!
//! The paper (SIGMOD'15) decomposes story detection into two phases:
//!
//! 1. **Story identification** ([`identify`]) — within a single data
//!    source, incrementally assign each information snippet to its best
//!    matching story or open a new one (§2.2). Two execution modes
//!    (Figure 2): *complete* (compare against every prior snippet — the
//!    baseline) and *temporal* (compare only inside a sliding window
//!    `[t-ω, t+ω]`). Stories can *merge* and *split* as the underlying
//!    real-world story evolves (incremental record linkage).
//! 2. **Story alignment** ([`align`]) — across sources, match stories
//!    whose content *and* temporal evolution are similar, producing
//!    integrated global stories; snippets are classified *aligning* or
//!    *enriching* (§2.3). Conflicts feed **story refinement**
//!    ([`refine`]): alignment evidence corrects identification mistakes
//!    (Figure 1d).
//!
//! [`pivot::StoryPivot`] is the user-facing engine combining the store,
//! per-source identifiers, the aligner, and the refiner;
//! [`pipeline::DynamicPivot`] adds the online policy of §2.4 (ingest
//! continuously, re-align dirty stories incrementally, tolerate
//! out-of-order arrival, add/remove sources and documents).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod checkpoint;
pub mod explain;
pub mod config;
pub mod hotcache;
pub mod identify;
pub mod metrics;
pub mod oplog;
pub mod pipeline;
pub mod pivot;
pub mod query;
pub mod refine;
pub mod sim;
pub mod state;
pub mod unionfind;

pub use align::{AlignOutcome, Aligner};
pub use config::{AlignConfig, IdentifyConfig, MatchMode, PivotConfig, SketchConfig};
pub use explain::{explain_assignment, explain_counterparts, Explanation};
pub use identify::{Identifier, IdentifyDecision};
pub use metrics::EngineMetrics;
pub use oplog::{replay_op, ReplayOp};
pub use pipeline::DynamicPivot;
pub use pivot::StoryPivot;
pub use query::{query_stories, QueryHit, StoryQuery};
pub use refine::RefineReport;
pub use sim::SimWeights;
pub use state::StoryState;
