//! Shared fixtures for the benchmark suite and the experiment harness.
//!
//! Every experiment (E1–E9, see `DESIGN.md`) draws its workload from
//! here so the criterion benches and the `harness` binary measure the
//! same corpora.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use storypivot_core::config::PivotConfig;
use storypivot_core::pivot::StoryPivot;
use storypivot_gen::{Corpus, CorpusBuilder, GenConfig};
use storypivot_types::DAY;

pub mod legacy;

/// The default identification window ω used across experiments.
pub const OMEGA: i64 = 14 * DAY;

/// A Figure-7-style corpus: fixed six-month period (Jun–Dec 2014 as in
/// the paper), 500 entities, story count scaled to hit `target`
/// snippets. Density grows with `target`.
pub fn corpus_fixed_period(target: usize, sources: u32, seed: u64) -> Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_sources(sources)
            .with_seed(seed)
            .with_target_snippets(target),
    )
    .build()
}

/// A constant-density corpus: the observation period grows with the
/// snippet budget, so the event rate (and thus the temporal window
/// population) stays constant. This isolates the E1 claim — temporal
/// identification cost is bounded by the window, complete cost grows
/// with everything seen so far.
pub fn corpus_constant_density(target: usize, sources: u32, seed: u64) -> Corpus {
    // Default config yields ~8k snippets over 183 days; hold that rate.
    let days = ((183.0 * target as f64 / 8_000.0) as i64).max(60);
    let mut cfg = GenConfig::default()
        .with_sources(sources)
        .with_seed(seed)
        .with_target_snippets(target);
    cfg.duration_days = days;
    CorpusBuilder::new(cfg).build()
}

/// Build a pivot pre-registered with the corpus' sources.
pub fn pivot_for(corpus: &Corpus, config: PivotConfig) -> StoryPivot {
    let mut pivot = StoryPivot::new(config);
    for src in &corpus.sources {
        let id = pivot.add_source_with_lag(src.name.clone(), src.kind, src.typical_lag);
        assert_eq!(id, src.id);
    }
    pivot
}

/// Ingest the full corpus (delivery order) into a fresh pivot.
pub fn ingest_all(corpus: &Corpus, config: PivotConfig) -> StoryPivot {
    let mut pivot = pivot_for(corpus, config);
    for s in &corpus.snippets {
        pivot.ingest(s.clone()).expect("valid corpus snippet");
    }
    pivot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let c = corpus_fixed_period(400, 4, 1);
        assert!(c.len() > 100);
        let d = corpus_constant_density(400, 4, 1);
        assert!(d.config.duration_days >= 60);
        let pivot = ingest_all(&c, PivotConfig::default());
        assert!(pivot.story_count() > 0);
    }
}
