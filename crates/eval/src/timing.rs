//! Latency recording for the performance experiments.

use std::time::{Duration, Instant};

/// Records a sequence of durations and summarizes them.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    nanos: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        self.nanos.push(d.as_nanos() as u64);
    }

    /// Time `f` and record its duration; returns `f`'s result.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.nanos.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nanos.is_empty()
    }

    /// Sum of all samples in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.nanos.is_empty() {
            0.0
        } else {
            self.total_nanos() as f64 / self.nanos.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds, by nearest-rank.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.nanos.is_empty() {
            return 0;
        }
        let mut sorted = self.nanos.clone();
        sorted.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Median in nanoseconds.
    pub fn p50_nanos(&self) -> u64 {
        self.quantile_nanos(0.5)
    }

    /// 95th percentile in nanoseconds.
    pub fn p95_nanos(&self) -> u64 {
        self.quantile_nanos(0.95)
    }

    /// Maximum sample in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.nanos.iter().copied().max().unwrap_or(0)
    }

    /// Samples per second implied by the total time (0 when empty).
    pub fn throughput_per_sec(&self) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos.len() as f64 * 1e9 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with(ms: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &m in ms {
            r.record(Duration::from_millis(m));
        }
        r
    }

    #[test]
    fn summary_statistics() {
        let r = recorder_with(&[1, 2, 3, 4, 100]);
        assert_eq!(r.len(), 5);
        assert_eq!(r.total_nanos(), 110_000_000);
        assert_eq!(r.mean_nanos(), 22_000_000.0);
        assert_eq!(r.p50_nanos(), 3_000_000);
        assert_eq!(r.max_nanos(), 100_000_000);
    }

    #[test]
    fn quantiles_are_order_insensitive() {
        let a = recorder_with(&[5, 1, 3, 2, 4]);
        let b = recorder_with(&[1, 2, 3, 4, 5]);
        assert_eq!(a.p50_nanos(), b.p50_nanos());
        assert_eq!(a.quantile_nanos(1.0), 5_000_000);
        assert_eq!(a.quantile_nanos(0.0), 1_000_000);
    }

    #[test]
    fn empty_recorder_is_calm() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean_nanos(), 0.0);
        assert_eq!(r.p95_nanos(), 0);
        assert_eq!(r.throughput_per_sec(), 0.0);
    }

    #[test]
    fn time_records_and_returns() {
        let mut r = LatencyRecorder::new();
        let out = r.time(|| 21 * 2);
        assert_eq!(out, 42);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn throughput_is_positive() {
        let r = recorder_with(&[10, 10]);
        // 2 samples in 20ms → 100/s.
        assert!((r.throughput_per_sec() - 100.0).abs() < 1e-6);
    }
}
