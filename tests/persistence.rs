//! Durability integration: snapshot, write-ahead log, and engine
//! checkpoint working together across a simulated restart.

use storypivot::core::config::PivotConfig;
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::prelude::*;
use storypivot::store::{replay, EventStore, Wal};
use storypivot::substrate::prop;
use storypivot::substrate::rng::RngExt;
use storypivot::types::DAY;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("storypivot-persist-{name}-{}", std::process::id()));
    p
}

fn corpus(target: usize, seed: u64) -> storypivot::gen::Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_sources(4)
            .with_seed(seed)
            .with_target_snippets(target),
    )
    .build()
}

/// The deployment pattern from the WAL docs: snapshot + log replay
/// reconstruct the live store exactly.
#[test]
fn snapshot_plus_wal_reconstructs_the_store() {
    let c = corpus(300, 71);
    let snap_path = tmp("snap");
    let wal_path = tmp("wal");
    std::fs::remove_file(&wal_path).ok();

    // Live store: first half snapshotted, second half WAL-logged.
    let mut live = EventStore::new();
    let mut wal = Wal::open(&wal_path).unwrap();
    for s in &c.sources {
        live.register_source(s.clone()).unwrap();
    }
    let half = c.len() / 2;
    for s in &c.snippets[..half] {
        live.insert(s.clone()).unwrap();
    }
    storypivot::store::snapshot::save(&live, &snap_path).unwrap();
    for s in &c.snippets[half..] {
        live.insert(s.clone()).unwrap();
        wal.log_insert(s).unwrap();
    }
    // Also delete something after the snapshot.
    let victim = c.snippets[0].id;
    live.remove(victim).unwrap();
    wal.log_remove(victim).unwrap();
    wal.sync().unwrap();

    // "Restart": snapshot + replay.
    let mut restored = storypivot::store::snapshot::load(&snap_path).unwrap();
    let report = replay(&wal_path, &mut restored).unwrap();
    assert!(!report.torn_tail);
    assert_eq!(restored.len(), live.len());
    assert_eq!(restored.stats(), live.stats());
    for s in live.iter() {
        assert_eq!(restored.get(s.id), Some(s));
    }

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&wal_path).ok();
}

/// Full engine restart via checkpoint: identified state carries over and
/// continued ingestion converges with the never-restarted engine.
#[test]
fn checkpoint_restart_converges_with_uninterrupted_run() {
    let c = corpus(400, 72);
    let half = c.len() / 2;

    // Uninterrupted reference.
    let mut reference = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &c.sources {
        reference.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        reference.ingest(s.clone()).unwrap();
    }
    reference.align();

    // Interrupted run: ingest half, checkpoint, "restart", finish.
    let mut first = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &c.sources {
        first.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets[..half] {
        first.ingest(s.clone()).unwrap();
    }
    let bytes = first.save_checkpoint();
    drop(first);

    let mut resumed =
        StoryPivot::load_checkpoint(PivotConfig::temporal(14 * DAY), &bytes).unwrap();
    for s in &c.snippets[half..] {
        resumed.ingest(s.clone()).unwrap();
    }
    resumed.align();
    resumed.check_invariants().unwrap();

    // Same number of snippets; identical global partitions.
    assert_eq!(resumed.store().len(), reference.store().len());
    let partition = |p: &StoryPivot| -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = p
            .global_stories()
            .iter()
            .map(|g| {
                let mut m: Vec<u32> = g.members.iter().map(|&(id, _)| id.raw()).collect();
                m.sort_unstable();
                m
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(partition(&resumed), partition(&reference));
}

#[test]
fn checkpoints_round_trip_arbitrary_engine_states() {
    prop::run(12, |rng| {
        let seed: u64 = rng.random();
        let target = rng.random_range(50usize..250);
        let removals = rng.random_range(0usize..10);

        let c = corpus(target, seed);
        let mut pivot = StoryPivot::new(PivotConfig::default());
        for s in &c.sources {
            pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
        }
        for s in &c.snippets {
            pivot.ingest(s.clone()).unwrap();
        }
        // Random-ish mutations before checkpointing.
        for i in 0..removals.min(c.len()) {
            let id = c.snippets[i * 7 % c.len()].id;
            let _ = pivot.remove_snippet(id);
        }
        pivot.align();

        let bytes = pivot.save_checkpoint();
        let restored = StoryPivot::load_checkpoint(PivotConfig::default(), &bytes).unwrap();
        assert_eq!(restored.store().len(), pivot.store().len());
        assert_eq!(restored.story_count(), pivot.story_count());
        for sn in pivot.store().iter() {
            assert_eq!(restored.story_of(sn.id), pivot.story_of(sn.id));
        }
        restored.check_invariants().unwrap();
    });
}
