//! Quick shape check: the three headline Figure-7 comparisons at three
//! corpus sizes (temporal vs complete cost and quality, refinement
//! delta). Faster than the full harness; used while tuning defaults.
//!
//! ```text
//! cargo run --release -p storypivot-eval --example shape_check
//! ```

use storypivot_core::config::PivotConfig;
use storypivot_eval::run::{run, RunOptions};
use storypivot_gen::{CorpusBuilder, GenConfig};
use storypivot_types::DAY;

fn main() {
    for n in [1000usize, 4000, 16000] {
        let c = CorpusBuilder::new(GenConfig::default().with_target_snippets(n)).build();
        let t = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
        let comp = run(&c, PivotConfig::complete(), RunOptions::default());
        let t_r = run(&c, PivotConfig::temporal(14 * DAY), RunOptions { refine: true, ..RunOptions::default() });
        println!(
            "n={:6} | temporal: {:>8.0}ns/ev siF1={:.3} saF1={:.3} | complete: {:>8.0}ns/ev siF1={:.3} saF1={:.3} | +refine saF1={:.3} moves={}",
            c.len(), t.per_event_nanos, t.si_f1(), t.sa_f1(),
            comp.per_event_nanos, comp.si_f1(), comp.sa_f1(),
            t_r.sa_f1(), t_r.refine_moves
        );
    }
}
