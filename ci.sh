#!/usr/bin/env bash
# Offline CI for the storypivot workspace.
#
# The whole point of the zero-dependency substrate is that this script
# passes on a machine with an EMPTY cargo registry and no network. Any
# step that tries to touch crates.io fails the run.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> build (release, all targets)"
cargo build --release --workspace --all-targets

echo "==> tests"
cargo test -q --workspace

echo "==> clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> smoke: bench harness e1 (quick, json artifact)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -p storypivot-bench --bin harness --release -- e1 --quick --json "$SMOKE_DIR/bench"
test -s "$SMOKE_DIR/bench/BENCH_e1.json"

echo "==> smoke: serve (pivotd + loadgen round trip)"
cargo run -p storypivot-serve --bin pivotd --release -- \
    --addr 127.0.0.1:0 --shards 2 \
    --checkpoint-dir "$SMOKE_DIR/ckpt" --port-file "$SMOKE_DIR/port" &
PIVOTD_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/port" ] && break
    kill -0 "$PIVOTD_PID" 2>/dev/null || { echo "pivotd died before binding"; exit 1; }
    sleep 0.1
done
test -s "$SMOKE_DIR/port" || { echo "pivotd never wrote its port file"; exit 1; }
PORT="$(cat "$SMOKE_DIR/port")"
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --quick --json "$SMOKE_DIR/BENCH_serve.json" --shutdown
# SHUTDOWN must terminate the daemon gracefully (exit 0) and leave one
# checkpoint per shard.
wait "$PIVOTD_PID"
test -s "$SMOKE_DIR/ckpt/shard0.spvc"
test -s "$SMOKE_DIR/ckpt/shard1.spvc"
test -s "$SMOKE_DIR/BENCH_serve.json"

echo "CI OK"
