//! pivotd — the StoryPivot serving daemon.
//!
//! ```text
//! pivotd --addr 127.0.0.1:7411 --shards 4 --checkpoint-dir ./ckpt
//! pivotd --addr 127.0.0.1:0 --port-file /tmp/pivotd.port   # ephemeral
//! pivotd --wal-dir ./wal --checkpoint-dir ./ckpt --fsync every:64
//! ```
//!
//! With `--wal-dir` every mutation is journaled before it is applied
//! and startup replays the journal on top of the newest checkpoint —
//! `kill -9` loses nothing that was acknowledged under `--fsync always`.
//! Runs until a client sends SHUTDOWN; the daemon then drains every
//! shard queue, writes one checkpoint per shard, and exits 0.
//!
//! ```text
//! pivotd --replica --leader 127.0.0.1:7411 --wal-dir ./rwal \
//!        --checkpoint-dir ./rckpt --addr 127.0.0.1:7412
//! ```
//!
//! `--replica --leader <addr>` starts a read-only follower: it
//! bootstraps each shard from the leader's newest checkpoint, tails
//! the leader's WAL, serves QUERY_STORIES/GET_STORY from local read
//! snapshots, and redirects writes with NOT_LEADER. `--wal-dir` is
//! required in this mode (the byte-identical WAL copy is the durable
//! replication cursor). `--snapshot-every-ops` / `--snapshot-max-age-ms`
//! tune read-snapshot freshness on leaders and replicas alike.
//!
//! `--deadline-ms N` turns on deadline shedding: a single-snippet
//! ingest that waited in its shard queue longer than N milliseconds is
//! answered with SHED (plus a retry hint) instead of being applied.
//! Debug builds also honor `STORYPIVOT_FAULTS` (e.g.
//! `seed=7,wal_enospc=20,wal_short=10,checkpoint=50,repl_drop=100` —
//! rates in permille) for deterministic fault injection.

use std::path::PathBuf;

use storypivot_serve::server::{serve, ServerConfig};
use storypivot_substrate::fault::FaultPlan;
use storypivot_substrate::wal::SyncPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: pivotd [--addr HOST:PORT] [--shards N] [--queue-depth N] \
         [--align-every N] [--retry-after-ms N] [--deadline-ms N] \
         [--io-workers N] \
         [--max-pipeline N] [--idle-timeout-ms N] [--checkpoint-dir DIR] \
         [--wal-dir DIR] [--fsync always|never|every:N] \
         [--checkpoint-every-bytes N] [--port-file PATH] \
         [--snapshot-every-ops N] [--snapshot-max-age-ms N] \
         [--replica] [--leader HOST:PORT]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    });
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {raw:?} for {flag}");
        usage();
    })
}

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut cfg = ServerConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut replica = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = parse(&mut args, "--addr"),
            "--shards" => cfg.shards = parse(&mut args, "--shards"),
            "--queue-depth" => cfg.queue_depth = parse(&mut args, "--queue-depth"),
            "--align-every" => cfg.align_every = parse(&mut args, "--align-every"),
            "--retry-after-ms" => cfg.retry_after_ms = parse(&mut args, "--retry-after-ms"),
            "--deadline-ms" => cfg.deadline_ms = parse(&mut args, "--deadline-ms"),
            "--io-workers" => cfg.io_workers = parse(&mut args, "--io-workers"),
            "--max-pipeline" => cfg.max_pipeline = parse(&mut args, "--max-pipeline"),
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Some(std::time::Duration::from_millis(parse(
                    &mut args,
                    "--idle-timeout-ms",
                )))
            }
            "--checkpoint-dir" => cfg.checkpoint_dir = Some(parse::<PathBuf>(&mut args, "--checkpoint-dir")),
            "--wal-dir" => cfg.wal_dir = Some(parse::<PathBuf>(&mut args, "--wal-dir")),
            "--fsync" => cfg.fsync = parse::<SyncPolicy>(&mut args, "--fsync"),
            "--checkpoint-every-bytes" => {
                cfg.checkpoint_every_bytes = parse(&mut args, "--checkpoint-every-bytes")
            }
            "--port-file" => port_file = Some(parse::<PathBuf>(&mut args, "--port-file")),
            "--snapshot-every-ops" => {
                cfg.snapshot_every_ops = parse(&mut args, "--snapshot-every-ops")
            }
            "--snapshot-max-age-ms" => {
                cfg.snapshot_max_age_ms = parse(&mut args, "--snapshot-max-age-ms")
            }
            "--replica" => replica = true,
            "--leader" => cfg.leader = Some(parse(&mut args, "--leader")),
            _ => usage(),
        }
    }
    if replica && cfg.leader.is_none() {
        eprintln!("--replica requires --leader HOST:PORT");
        usage();
    }
    if cfg.leader.is_some() && !replica {
        eprintln!("--leader only makes sense with --replica");
        usage();
    }
    // Deterministic fault injection, debug/test builds only (the hooks
    // are inert in release binaries even when the plan is set).
    cfg.faults = FaultPlan::from_env();
    if let Some(plan) = &cfg.faults {
        eprintln!("pivotd: fault plan active: {plan:?}");
    }

    let handle = match serve(addr.as_str(), cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("pivotd: {e}");
            std::process::exit(1);
        }
    };
    let bound = handle.addr();
    println!("pivotd listening on {bound}");
    if let Some(path) = port_file {
        // Written atomically-enough for the CI poll loop: the content is
        // only a few bytes and appears in one write.
        if let Err(e) = std::fs::write(&path, format!("{}\n", bound.port())) {
            eprintln!("pivotd: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    handle.join();
    println!("pivotd: shutdown complete");
}
