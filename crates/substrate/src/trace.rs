//! A fixed-capacity ring buffer of recent engine events.
//!
//! When a shard worker panics, supervision rebuilds the shard from its
//! checkpoint and journal — which repairs the state but destroys the
//! evidence: the sequence of operations that led up to the poison op is
//! gone. [`TraceRing`] keeps that evidence cheaply. Each shard owns one
//! ring (single-threaded, no locking), pushes a short line per engine
//! event (ingest, align, checkpoint, restart…), and the supervisor
//! dumps the ring — newest events last — before rebuilding, turning a
//! silent two-strike quarantine into a diagnosable artifact.
//!
//! The ring is bounded: pushing beyond capacity evicts the oldest
//! event, and a monotonically increasing sequence number makes the
//! eviction visible in the dump (`seq` gaps at the top mean history was
//! truncated).

use std::collections::VecDeque;

/// One traced engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Static event kind label, e.g. `"ingest"` or `"rebuild"`.
    pub label: &'static str,
    /// Free-form detail (ids, sizes, outcomes).
    pub detail: String,
}

/// A bounded ring of [`TraceEvent`]s; see the module docs.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<TraceEvent>,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            next_seq: 0,
            events: VecDeque::with_capacity(capacity),
        }
    }

    /// Append one event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn push(&mut self, label: &'static str, detail: impl Into<String>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            seq,
            label,
            detail: detail.into(),
        });
        seq
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retention capacity this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (retained + evicted).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drop every retained event (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render the retained events as one line each, oldest first:
    /// `#<seq> <label> <detail>`. A truncation header records how many
    /// older events were evicted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let evicted = self.next_seq - self.events.len() as u64;
        if evicted > 0 {
            out.push_str(&format!("... {evicted} earlier events evicted ...\n"));
        }
        for e in &self.events {
            out.push_str(&format!("#{:06} {} {}\n", e.seq, e.label, e.detail));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_retains_in_order_up_to_capacity() {
        let mut ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for i in 0..3u64 {
            assert_eq!(ring.push("ev", format!("n={i}")), i);
        }
        assert_eq!(ring.len(), 3);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_evicts_oldest_and_keeps_sequence() {
        let mut ring = TraceRing::new(2);
        for i in 0..5u64 {
            ring.push("ev", i.to_string());
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_pushed(), 5);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        let dump = ring.render();
        assert!(dump.starts_with("... 3 earlier events evicted ..."));
        assert!(dump.contains("#000003 ev 3"));
        assert!(dump.contains("#000004 ev 4"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push("a", "");
        ring.push("b", "");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.iter().next().unwrap().label, "b");
    }

    #[test]
    fn clear_keeps_counting() {
        let mut ring = TraceRing::new(4);
        ring.push("a", "");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.push("b", ""), 1);
        assert_eq!(ring.total_pushed(), 2);
    }
}
