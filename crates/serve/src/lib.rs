//! Network serving layer for the StoryPivot engine.
//!
//! The paper's setting is a *stream*: "snippets are generated
//! dynamically every time a news document is published online" (§2.4).
//! This crate puts the engine behind a TCP wire so that stream can be
//! real traffic instead of an in-process loop:
//!
//! - [`proto`] — a length-prefixed binary protocol over
//!   `substrate::buf` (no serialization dependencies).
//! - [`server`] — `pivotd`: shards the engine by source id across N
//!   worker threads, routes frames through *bounded* queues, and
//!   answers BUSY (with a retry-after hint) instead of buffering
//!   unboundedly. Mutations are journaled to a per-shard write-ahead
//!   log before they touch the engine; startup recovers each shard
//!   from its newest checkpoint generation plus the WAL tail, and
//!   worker panics are supervised (engine rebuild, two-strike
//!   dead-letter quarantine). Graceful SHUTDOWN drains every queue and
//!   writes a final checkpoint per shard.
//! - [`stats`] — per-shard counters and ingest-latency percentiles
//!   surfaced through the STATS frame. The METRICS frame goes further:
//!   each shard's private `substrate::metrics::Registry` (engine
//!   counters, WAL timings, per-shard serving gauges) is snapshotted
//!   and merged — counters summed, histograms merged bucket-wise — into
//!   one Prometheus-style text exposition.
//! - [`snapshot`] — epoch-versioned, immutable per-shard read
//!   snapshots. Shard workers publish them on a freshness policy
//!   (`--snapshot-every-ops` / `--snapshot-max-age-ms`); I/O workers
//!   answer QUERY_STORIES and GET_STORY straight from the snapshots,
//!   so reads never ride the shard write queues.
//! - [`replica`] — WAL-shipped follower replicas: `pivotd --leader
//!   <addr>` bootstraps from the leader's newest checkpoint, tails its
//!   WAL over REPL_SUBSCRIBE, serves reads only (writes get a
//!   NOT_LEADER redirect), and exports per-shard replication lag.
//! - [`client`] — a blocking client for the protocol.
//! - [`load`] — `loadgen`: replays a [`storypivot_gen`] corpus at a
//!   target rate over M connections and reports throughput and
//!   p50/p95/p99 latency. Its storm mode ([`load::conn_storm`]) opens
//!   thousands of mostly-idle connections that trickle traffic, to
//!   size per-connection server memory and tail latency.
//!
//! Everything is std-only (`std::net`, `std::thread`,
//! `std::sync::mpsc`) per the workspace's hermetic-build guard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod proto;
pub mod replica;
pub mod server;
pub mod snapshot;
pub mod stats;

pub use client::{BackoffPolicy, Client, IngestReply, ReplDelivery, RetryStats};
pub use snapshot::{ShardSnapshot, SnapshotSlot};
pub use load::{
    conn_storm, query_fanout, replay, replay_script, LoadOptions, LoadReport, QueryOptions,
    QueryReport, StormOptions, StormReport, TargetReport,
};
pub use proto::{Request, Response, StorySummary, MAX_FRAME_LEN};
pub use server::{serve, ServerConfig, ServerHandle, POISON_HEADLINE};
pub use stats::{ServeStats, ShardStats};
