//! # StoryPivot
//!
//! A from-scratch, production-quality reproduction of **StoryPivot:
//! Comparing and Contrasting Story Evolution** (Gruenheid, Rekatsinas,
//! Kossmann, Srivastava — SIGMOD 2015).
//!
//! StoryPivot detects *stories* — temporally evolving clusters of event
//! information snippets — in multi-source event data, in two phases:
//!
//! 1. **Story identification**: within each data source, incrementally
//!    group snippets into stories (temporal sliding-window or complete
//!    matching), with merge/split support as stories evolve.
//! 2. **Story alignment**: across sources, integrate per-source stories
//!    into global stories, classify snippets as *aligning* or
//!    *enriching*, and *refine* identification mistakes.
//!
//! This facade crate re-exports the whole workspace under one name.
//!
//! ## Quickstart
//!
//! ```
//! use storypivot::prelude::*;
//!
//! // Build a pivot over two sources with default configuration.
//! let mut pivot = StoryPivot::new(PivotConfig::default());
//! let nyt = pivot.add_source("New York Times", SourceKind::Newspaper);
//! let wsj = pivot.add_source("Wall Street Journal", SourceKind::Newspaper);
//!
//! let t0 = Timestamp::from_ymd(2014, 7, 17);
//! let e_ukr = EntityId::new(0);
//! let e_mal = EntityId::new(1);
//! let t_crash = TermId::new(0);
//!
//! // Ingest one snippet per source describing the same real-world event.
//! let v0 = pivot.ingest(
//!     Snippet::builder(SnippetId::new(0), nyt, t0)
//!         .entity(e_ukr, 1.0).entity(e_mal, 1.0).term(t_crash, 1.0)
//!         .event_type(EventType::Accident)
//!         .headline("Jetliner Explodes over Ukraine")
//!         .build(),
//! ).unwrap();
//! let v1 = pivot.ingest(
//!     Snippet::builder(SnippetId::new(1), wsj, t0)
//!         .entity(e_ukr, 1.0).entity(e_mal, 1.0).term(t_crash, 1.0)
//!         .event_type(EventType::Accident)
//!         .headline("Malaysia Airlines Jet Crashes in Ukraine")
//!         .build(),
//! ).unwrap();
//!
//! pivot.align();
//! let global = pivot.global_stories();
//! assert_eq!(global.len(), 1);
//! assert!(global[0].is_cross_source());
//! # let _ = (v0, v1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use storypivot_core as core;
pub use storypivot_demo as demo;
pub use storypivot_eval as eval;
pub use storypivot_extract as extract;
pub use storypivot_gen as gen;
pub use storypivot_serve as serve;
pub use storypivot_sketch as sketch;
pub use storypivot_store as store;
pub use storypivot_substrate as substrate;
pub use storypivot_text as text;
pub use storypivot_types as types;

/// Everything a typical application needs, importable in one line.
pub mod prelude {
    pub use storypivot_core::config::PivotConfig;
    pub use storypivot_core::pivot::StoryPivot;
    pub use storypivot_types::{
        DocId, EntityId, EventType, GlobalStory, GlobalStoryId, Snippet, SnippetId, SnippetRole,
        Source, SourceId, SourceKind, Story, StoryId, TermId, TimeRange, Timestamp, DAY, HOUR,
    };
}
