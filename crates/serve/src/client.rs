//! A blocking client for the pivotd wire protocol.

use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use storypivot_types::{DocId, Error, Result, Snippet, SourceId, SourceKind, StoryId};

use crate::proto::{frame, read_frame, Request, Response, StorySummary};
use crate::stats::ServeStats;

/// The outcome of a single-snippet ingest: either a story assignment or
/// a BUSY push-back from a full shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestReply {
    /// The snippet joined this per-source story.
    Assigned(StoryId),
    /// The shard queue was full; retry after the hinted backoff.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
}

/// One connection to a pivotd server. Requests are strictly
/// request/response over the connection, so a `Client` is `!Sync` by
/// design — open one per thread.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and wait for its response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.writer.write_all(&frame(|b| req.encode(b)))?;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Some(payload) => Response::decode(&payload),
            None => Err(Error::Io("server closed the connection".into())),
        }
    }

    /// Send a request and fail on an error response.
    fn request_ok(&mut self, req: &Request) -> Result<Response> {
        self.request(req)?.into_result()
    }

    /// Register a source; the server allocates and returns its id.
    pub fn add_source(&mut self, name: &str, kind: SourceKind, lag: i64) -> Result<SourceId> {
        match self.request_ok(&Request::AddSource {
            name: name.to_string(),
            kind,
            lag,
        })? {
            Response::SourceAdded(id) => Ok(id),
            other => Err(unexpected("SourceAdded", &other)),
        }
    }

    /// Ingest one snippet, surfacing BUSY to the caller.
    pub fn ingest(&mut self, snippet: &Snippet) -> Result<IngestReply> {
        match self.request_ok(&Request::IngestSnippet(snippet.clone()))? {
            Response::Ingested(story) => Ok(IngestReply::Assigned(story)),
            Response::Busy { retry_after_ms } => Ok(IngestReply::Busy { retry_after_ms }),
            other => Err(unexpected("Ingested/Busy", &other)),
        }
    }

    /// Ingest one snippet, sleeping out BUSY replies up to `max_retries`
    /// times. Returns the story id and how many retries were needed.
    pub fn ingest_retry(&mut self, snippet: &Snippet, max_retries: u32) -> Result<(StoryId, u32)> {
        let mut retries = 0;
        loop {
            match self.ingest(snippet)? {
                IngestReply::Assigned(story) => return Ok((story, retries)),
                IngestReply::Busy { retry_after_ms } => {
                    if retries >= max_retries {
                        return Err(Error::Io(format!(
                            "shard still busy after {max_retries} retries"
                        )));
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
                }
            }
        }
    }

    /// Ingest a batch (the server blocks on full queues instead of BUSY).
    pub fn ingest_batch(&mut self, batch: Vec<Snippet>) -> Result<u32> {
        match self.request_ok(&Request::IngestBatch(batch))? {
            Response::BatchIngested(n) => Ok(n),
            other => Err(unexpected("BatchIngested", &other)),
        }
    }

    /// The full per-source story partition, ordered by story id.
    pub fn query_stories(&mut self) -> Result<Vec<StorySummary>> {
        match self.request_ok(&Request::QueryStories)? {
            Response::Stories(stories) => Ok(stories),
            other => Err(unexpected("Stories", &other)),
        }
    }

    /// One story's summary.
    pub fn get_story(&mut self, id: StoryId) -> Result<StorySummary> {
        match self.request_ok(&Request::GetStory(id))? {
            Response::Story(story) => Ok(story),
            other => Err(unexpected("Story", &other)),
        }
    }

    /// Remove a document everywhere; returns how many snippets left.
    pub fn remove_doc(&mut self, doc: DocId) -> Result<u32> {
        match self.request_ok(&Request::RemoveDoc(doc))? {
            Response::Removed(n) => Ok(n),
            other => Err(unexpected("Removed", &other)),
        }
    }

    /// Per-shard serving statistics.
    pub fn stats(&mut self) -> Result<ServeStats> {
        match self.request_ok(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to drain, checkpoint, and stop. The ack arrives
    /// only after every shard's state is durable.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request_ok(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Codec(format!("expected a {wanted} response, got {got:?}"))
}
