//! Durable snapshots of an [`EventStore`].
//!
//! Snapshots are written atomically: encode to a temporary file in the
//! same directory, fsync, then rename over the target. A crash mid-write
//! therefore never leaves a half-written snapshot under the target name.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use storypivot_types::{Error, Result};

use crate::codec::{decode_store, encode_store};
use crate::event_store::EventStore;

/// Write a snapshot of `store` to `path` atomically.
pub fn save(store: &EventStore, path: &Path) -> Result<()> {
    let bytes = encode_store(store);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a snapshot from `path`.
pub fn load(path: &Path) -> Result<EventStore> {
    let bytes = fs::read(path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
    decode_store(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{
        EntityId, Snippet, SnippetId, Source, SourceId, SourceKind, Timestamp,
    };

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storypivot-snapshot-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_round_trip() {
        let mut store = EventStore::new();
        store
            .register_source(Source::new(SourceId::new(0), "NYT", SourceKind::Newspaper))
            .unwrap();
        store
            .insert(
                Snippet::builder(SnippetId::new(0), SourceId::new(0), Timestamp::from_ymd(2014, 7, 17))
                    .entity(EntityId::new(1), 1.0)
                    .headline("crash")
                    .build(),
            )
            .unwrap();

        let path = tmp_path("roundtrip");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(SnippetId::new(0)), store.get(SnippetId::new(0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/storypivot.snap")).unwrap_err();
        assert!(matches!(err, Error::Io(_)));
    }

    #[test]
    fn load_corrupt_file_is_codec_error() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, b"not a snapshot").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, Error::Codec(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_overwrites_previous_snapshot() {
        let path = tmp_path("overwrite");
        let empty = EventStore::new();
        save(&empty, &path).unwrap();
        let mut bigger = EventStore::new();
        bigger
            .register_source(Source::new(SourceId::new(0), "WSJ", SourceKind::Newspaper))
            .unwrap();
        save(&bigger, &path).unwrap();
        assert_eq!(load(&path).unwrap().source_count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
