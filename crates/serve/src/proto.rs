//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is one *frame*:
//!
//! ```text
//! len u32 (LE) | opcode u8 | body
//! ```
//!
//! where `len` counts the opcode plus body. Requests use opcodes
//! `0x01..=0x0A`, responses `0x81..=0x8F`; snippets and sources reuse
//! the store's binary codec, so a served snippet is byte-identical to a
//! checkpointed one. Every decode path bounds-checks before touching
//! bytes: torn frames, oversized length prefixes, garbage opcodes, and
//! trailing bytes all surface as [`Error::Codec`] — never a panic.
//!
//! Replication rides the same framing: a follower polls
//! [`Request::ReplSubscribe`] with its durable cursor and the leader
//! answers [`Response::ReplFrame`] (a run of CRC-framed WAL records,
//! shipped verbatim) or [`Response::ReplCheckpoint`] (a full
//! generation checkpoint when the cursor cannot resume). A follower
//! answers every write with [`Response::NotLeader`].

use std::io::{self, Read, Write};

use storypivot_store::codec::{decode_snippet, encode_snippet, skip_snippet};
use storypivot_substrate::buf::{Buf, BufMut};
use storypivot_types::{
    DocId, Error, Result, Snippet, SnippetId, SourceId, SourceKind, StoryId, TimeRange,
};

use crate::stats::{ServeStats, ShardStats};

/// Upper bound on one frame's payload (opcode + body). A length prefix
/// above this is rejected *before* any allocation, so a hostile or
/// corrupt peer cannot make the server reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

// ---- request opcodes -------------------------------------------------

/// Register a source (body: kind u8, lag i64, name str).
pub const OP_ADD_SOURCE: u8 = 0x01;
/// Ingest one snippet (body: snippet).
pub const OP_INGEST_SNIPPET: u8 = 0x02;
/// Ingest a batch (body: count u32, snippets).
pub const OP_INGEST_BATCH: u8 = 0x03;
/// Query the per-source story partition (empty body).
pub const OP_QUERY_STORIES: u8 = 0x04;
/// Fetch one story (body: story u32).
pub const OP_GET_STORY: u8 = 0x05;
/// Remove a document everywhere (body: doc u32).
pub const OP_REMOVE_DOC: u8 = 0x06;
/// Fetch per-shard serving statistics (empty body).
pub const OP_STATS: u8 = 0x07;
/// Drain, checkpoint, and stop the server (empty body).
pub const OP_SHUTDOWN: u8 = 0x08;
/// Fetch the merged metrics exposition (empty body).
pub const OP_METRICS: u8 = 0x09;
/// Subscribe to a shard's WAL stream from a resume cursor (body:
/// shard u32, generation u64, wal_offset u64).
pub const OP_REPL_SUBSCRIBE: u8 = 0x0A;

// ---- response opcodes ------------------------------------------------

/// Source registered (body: source u32).
pub const OP_SOURCE_ADDED: u8 = 0x81;
/// Snippet ingested (body: story u32).
pub const OP_INGESTED: u8 = 0x82;
/// Batch ingested (body: count u32).
pub const OP_BATCH_INGESTED: u8 = 0x83;
/// Story partition (body: count u32, summaries).
pub const OP_STORIES: u8 = 0x84;
/// One story (body: summary).
pub const OP_STORY: u8 = 0x85;
/// Document removed (body: count u32).
pub const OP_REMOVED: u8 = 0x86;
/// Serving statistics (body: shard count u32, shard stats).
pub const OP_STATS_REPLY: u8 = 0x87;
/// Server drained and checkpointed (empty body).
pub const OP_SHUTDOWN_ACK: u8 = 0x88;
/// Shard queue full — retry later (body: retry_after_ms u32).
pub const OP_BUSY: u8 = 0x89;
/// Request failed (body: code u8, message str).
pub const OP_ERROR: u8 = 0x8A;
/// Metrics exposition (body: text str).
pub const OP_METRICS_REPLY: u8 = 0x8B;
/// Write rejected by a read-only follower (body: leader str).
pub const OP_NOT_LEADER: u8 = 0x8C;
/// A batch of WAL records shipped verbatim (body: generation u64,
/// next_offset u64, leader_wal_len u64, leader_ops u64, records bytes).
pub const OP_REPL_FRAME: u8 = 0x8D;
/// Bootstrap / catch-up checkpoint (body: generation u64,
/// checkpoint bytes — empty bytes mean "start from a fresh engine").
pub const OP_REPL_CHECKPOINT: u8 = 0x8E;
/// Write shed: it waited in queue past its deadline budget and was
/// dropped unapplied (body: retry_after_ms u32).
pub const OP_SHED: u8 = 0x8F;

// ---- bounded readers -------------------------------------------------

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::Codec(format!(
            "truncated frame: need {n} bytes for {what}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut impl Buf, what: &str) -> Result<u8> {
    need(buf, 1, what)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut impl Buf, what: &str) -> Result<u32> {
    need(buf, 4, what)?;
    Ok(buf.get_u32_le())
}

fn get_i64(buf: &mut impl Buf, what: &str) -> Result<i64> {
    need(buf, 8, what)?;
    Ok(buf.get_i64_le())
}

fn get_u64(buf: &mut impl Buf, what: &str) -> Result<u64> {
    need(buf, 8, what)?;
    Ok(buf.get_u64_le())
}

fn put_bytes(buf: &mut impl BufMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut impl Buf, what: &str) -> Result<Vec<u8>> {
    let len = get_u32(buf, what)? as usize;
    need(buf, len, what)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    Ok(raw)
}

fn put_str(buf: &mut impl BufMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf, what: &str) -> Result<String> {
    let len = get_u32(buf, what)? as usize;
    need(buf, len, what)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| Error::Codec(format!("invalid utf-8 in {what}")))
}

// ---- requests --------------------------------------------------------

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a source; the server allocates the id and routes the
    /// source to its shard.
    AddSource {
        /// Display name.
        name: String,
        /// Source kind.
        kind: SourceKind,
        /// Typical reporting lag in seconds.
        lag: i64,
    },
    /// Ingest one snippet (BUSY backpressure applies).
    IngestSnippet(Snippet),
    /// Ingest a batch (blocks on full shard queues instead of BUSY).
    IngestBatch(Vec<Snippet>),
    /// The per-source story partition across all shards.
    QueryStories,
    /// One story's summary.
    GetStory(StoryId),
    /// Remove a document from every shard.
    RemoveDoc(DocId),
    /// Per-shard serving statistics.
    Stats,
    /// Drain queues, checkpoint every shard, stop the server.
    Shutdown,
    /// The merged Prometheus-style metrics exposition across shards.
    Metrics,
    /// Subscribe to one shard's WAL stream (follower → leader). The
    /// cursor names the follower's durable position: when `generation`
    /// matches the leader's and `wal_offset` is within its journal, the
    /// leader ships records from that offset; otherwise it answers with
    /// a full checkpoint to re-bootstrap from.
    ReplSubscribe {
        /// Shard whose journal is being tailed.
        shard: u32,
        /// Checkpoint generation the follower last applied.
        generation: u64,
        /// Byte offset into the leader's journal (a record boundary).
        wal_offset: u64,
    },
}

impl Request {
    /// Encode opcode + body (without the length prefix).
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Request::AddSource { name, kind, lag } => {
                buf.put_u8(OP_ADD_SOURCE);
                buf.put_u8(kind.code());
                buf.put_i64_le(*lag);
                put_str(buf, name);
            }
            Request::IngestSnippet(s) => {
                buf.put_u8(OP_INGEST_SNIPPET);
                encode_snippet(buf, s);
            }
            Request::IngestBatch(batch) => {
                buf.put_u8(OP_INGEST_BATCH);
                buf.put_u32_le(batch.len() as u32);
                for s in batch {
                    encode_snippet(buf, s);
                }
            }
            Request::QueryStories => buf.put_u8(OP_QUERY_STORIES),
            Request::GetStory(id) => {
                buf.put_u8(OP_GET_STORY);
                buf.put_u32_le(id.raw());
            }
            Request::RemoveDoc(doc) => {
                buf.put_u8(OP_REMOVE_DOC);
                buf.put_u32_le(doc.raw());
            }
            Request::Stats => buf.put_u8(OP_STATS),
            Request::Shutdown => buf.put_u8(OP_SHUTDOWN),
            Request::Metrics => buf.put_u8(OP_METRICS),
            Request::ReplSubscribe {
                shard,
                generation,
                wal_offset,
            } => {
                buf.put_u8(OP_REPL_SUBSCRIBE);
                buf.put_u32_le(*shard);
                buf.put_u64_le(*generation);
                buf.put_u64_le(*wal_offset);
            }
        }
    }

    /// Decode a full frame payload (opcode + body); trailing bytes are
    /// a codec error.
    pub fn decode(mut payload: &[u8]) -> Result<Request> {
        let buf = &mut payload;
        let op = get_u8(buf, "request opcode")?;
        let req = match op {
            OP_ADD_SOURCE => {
                let code = get_u8(buf, "source kind")?;
                let kind = SourceKind::from_code(code)
                    .ok_or_else(|| Error::Codec(format!("invalid source kind code {code}")))?;
                let lag = get_i64(buf, "source lag")?;
                let name = get_str(buf, "source name")?;
                Request::AddSource { name, kind, lag }
            }
            OP_INGEST_SNIPPET => Request::IngestSnippet(decode_snippet(buf)?),
            OP_INGEST_BATCH => {
                let n = get_u32(buf, "batch count")? as usize;
                // A snippet encodes to ≥ 29 bytes; reject absurd counts
                // before allocating.
                need(buf, n.saturating_mul(29), "batch snippets")?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(decode_snippet(buf)?);
                }
                Request::IngestBatch(batch)
            }
            OP_QUERY_STORIES => Request::QueryStories,
            OP_GET_STORY => Request::GetStory(StoryId::new(get_u32(buf, "story id")?)),
            OP_REMOVE_DOC => Request::RemoveDoc(DocId::new(get_u32(buf, "doc id")?)),
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_METRICS => Request::Metrics,
            OP_REPL_SUBSCRIBE => Request::ReplSubscribe {
                shard: get_u32(buf, "repl shard")?,
                generation: get_u64(buf, "repl generation")?,
                wal_offset: get_u64(buf, "repl wal offset")?,
            },
            other => return Err(Error::Codec(format!("unknown request opcode 0x{other:02x}"))),
        };
        if buf.has_remaining() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after request",
                buf.remaining()
            )));
        }
        Ok(req)
    }
}

// ---- borrowed (zero-copy) decode ------------------------------------
//
// The multiplexed server decodes every inbound frame directly out of
// the connection's pooled read buffer. For the small control frames
// that dominate steady-state traffic (GET_STORY, STATS, QUERY, …) the
// borrowed path performs zero heap allocations: strings stay `&str`
// views into the frame, and variable-size payloads (snippets, batches,
// summaries) are *validated* in place — every bounds, opcode, UTF-8,
// and event-type check `decode` would run — but only materialised via
// `to_owned()` when a layer actually needs ownership.

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(Error::Codec(format!(
            "truncated frame: need {n} bytes for {what}, have {}",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_str_ref<'a>(buf: &mut &'a [u8], what: &str) -> Result<&'a str> {
    let len = get_u32(buf, what)? as usize;
    let raw = take(buf, len, what)?;
    std::str::from_utf8(raw).map_err(|_| Error::Codec(format!("invalid utf-8 in {what}")))
}

fn get_bytes_ref<'a>(buf: &mut &'a [u8], what: &str) -> Result<&'a [u8]> {
    let len = get_u32(buf, what)? as usize;
    take(buf, len, what)
}

/// A validated, still-encoded snippet inside a request frame. The
/// routing header (id, source) is parsed eagerly so the server can
/// shard the frame; the body is decoded only on [`SnippetRef::to_owned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnippetRef<'a> {
    /// The snippet id from the encoded header.
    pub id: SnippetId,
    /// The owning source — the serving layer's shard-routing key.
    pub source: SourceId,
    raw: &'a [u8],
}

impl SnippetRef<'_> {
    /// Materialise the snippet (the only allocating step).
    pub fn to_owned(&self) -> Snippet {
        decode_snippet(&mut &self.raw[..]).expect("SnippetRef wraps a validated encoding")
    }
}

/// A validated, still-encoded ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRef<'a> {
    count: u32,
    raw: &'a [u8],
}

impl<'a> BatchRef<'a> {
    /// Number of snippets in the batch.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Walk the batch without allocating.
    pub fn iter(&self) -> SnippetIter<'a> {
        SnippetIter {
            rest: self.raw,
            remaining: self.count,
        }
    }

    /// Materialise every snippet.
    pub fn to_owned(&self) -> Vec<Snippet> {
        self.iter().map(|s| s.to_owned()).collect()
    }
}

/// Iterator over the validated snippets of a [`BatchRef`].
#[derive(Debug, Clone)]
pub struct SnippetIter<'a> {
    rest: &'a [u8],
    remaining: u32,
}

impl<'a> Iterator for SnippetIter<'a> {
    type Item = SnippetRef<'a>;

    fn next(&mut self) -> Option<SnippetRef<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let before = self.rest;
        let mut cur = self.rest;
        let (id, source) = skip_snippet(&mut cur).expect("BatchRef wraps a validated encoding");
        let span = &before[..before.len() - cur.len()];
        self.rest = cur;
        Some(SnippetRef {
            id,
            source,
            raw: span,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// A client → server message decoded without copying out of the frame.
///
/// Produced by [`Request::decode_borrowed`]; accepts and rejects
/// exactly the frames [`Request::decode`] does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestRef<'a> {
    /// Register a source.
    AddSource {
        /// Display name (borrowed from the frame).
        name: &'a str,
        /// Source kind.
        kind: SourceKind,
        /// Typical reporting lag in seconds.
        lag: i64,
    },
    /// Ingest one snippet (validated, not yet materialised).
    IngestSnippet(SnippetRef<'a>),
    /// Ingest a batch (validated, not yet materialised).
    IngestBatch(BatchRef<'a>),
    /// The per-source story partition across all shards.
    QueryStories,
    /// One story's summary.
    GetStory(StoryId),
    /// Remove a document from every shard.
    RemoveDoc(DocId),
    /// Per-shard serving statistics.
    Stats,
    /// Drain queues, checkpoint every shard, stop the server.
    Shutdown,
    /// The merged metrics exposition across shards.
    Metrics,
    /// Subscribe to one shard's WAL stream from a resume cursor.
    ReplSubscribe {
        /// Shard whose journal is being tailed.
        shard: u32,
        /// Checkpoint generation the follower last applied.
        generation: u64,
        /// Byte offset into the leader's journal (a record boundary).
        wal_offset: u64,
    },
}

impl RequestRef<'_> {
    /// Materialise an owned [`Request`] (equal to what
    /// [`Request::decode`] returns for the same frame).
    pub fn to_owned(&self) -> Request {
        match *self {
            RequestRef::AddSource { name, kind, lag } => Request::AddSource {
                name: name.to_string(),
                kind,
                lag,
            },
            RequestRef::IngestSnippet(s) => Request::IngestSnippet(s.to_owned()),
            RequestRef::IngestBatch(b) => Request::IngestBatch(b.to_owned()),
            RequestRef::QueryStories => Request::QueryStories,
            RequestRef::GetStory(id) => Request::GetStory(id),
            RequestRef::RemoveDoc(doc) => Request::RemoveDoc(doc),
            RequestRef::Stats => Request::Stats,
            RequestRef::Shutdown => Request::Shutdown,
            RequestRef::Metrics => Request::Metrics,
            RequestRef::ReplSubscribe {
                shard,
                generation,
                wal_offset,
            } => Request::ReplSubscribe {
                shard,
                generation,
                wal_offset,
            },
        }
    }
}

impl Request {
    /// Decode a full frame payload without copying: small frames
    /// allocate nothing, variable-size payloads are validated in place
    /// and materialised lazily. Accepts and rejects exactly the frames
    /// [`Request::decode`] does, including the trailing-bytes check.
    pub fn decode_borrowed(payload: &[u8]) -> Result<RequestRef<'_>> {
        let buf = &mut &payload[..];
        let op = get_u8(buf, "request opcode")?;
        let req = match op {
            OP_ADD_SOURCE => {
                let code = get_u8(buf, "source kind")?;
                let kind = SourceKind::from_code(code)
                    .ok_or_else(|| Error::Codec(format!("invalid source kind code {code}")))?;
                let lag = get_i64(buf, "source lag")?;
                let name = get_str_ref(buf, "source name")?;
                RequestRef::AddSource { name, kind, lag }
            }
            OP_INGEST_SNIPPET => {
                let before = *buf;
                let (id, source) = skip_snippet(buf)?;
                let raw = &before[..before.len() - buf.len()];
                RequestRef::IngestSnippet(SnippetRef { id, source, raw })
            }
            OP_INGEST_BATCH => {
                let n = get_u32(buf, "batch count")?;
                need(buf, (n as usize).saturating_mul(29), "batch snippets")?;
                let before = *buf;
                for _ in 0..n {
                    skip_snippet(buf)?;
                }
                let raw = &before[..before.len() - buf.len()];
                RequestRef::IngestBatch(BatchRef { count: n, raw })
            }
            OP_QUERY_STORIES => RequestRef::QueryStories,
            OP_GET_STORY => RequestRef::GetStory(StoryId::new(get_u32(buf, "story id")?)),
            OP_REMOVE_DOC => RequestRef::RemoveDoc(DocId::new(get_u32(buf, "doc id")?)),
            OP_STATS => RequestRef::Stats,
            OP_SHUTDOWN => RequestRef::Shutdown,
            OP_METRICS => RequestRef::Metrics,
            OP_REPL_SUBSCRIBE => RequestRef::ReplSubscribe {
                shard: get_u32(buf, "repl shard")?,
                generation: get_u64(buf, "repl generation")?,
                wal_offset: get_u64(buf, "repl wal offset")?,
            },
            other => return Err(Error::Codec(format!("unknown request opcode 0x{other:02x}"))),
        };
        if !buf.is_empty() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after request",
                buf.len()
            )));
        }
        Ok(req)
    }
}

/// A validated, still-encoded story summary inside a response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryRef<'a> {
    raw: &'a [u8],
}

impl SummaryRef<'_> {
    /// Materialise the summary.
    pub fn to_owned(&self) -> StorySummary {
        decode_summary(&mut &self.raw[..]).expect("SummaryRef wraps a validated encoding")
    }
}

fn skip_summary(buf: &mut &[u8]) -> Result<()> {
    take(buf, 4, "story id")?;
    take(buf, 4, "story source")?;
    take(buf, 8, "story start")?;
    take(buf, 8, "story end")?;
    let n = get_u32(buf, "member count")? as usize;
    take(buf, n.saturating_mul(4), "story members")?;
    Ok(())
}

/// A validated, still-encoded story partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoriesRef<'a> {
    count: u32,
    raw: &'a [u8],
}

impl<'a> StoriesRef<'a> {
    /// Number of summaries.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Walk the summaries without allocating.
    pub fn iter(&self) -> SummaryIter<'a> {
        SummaryIter {
            rest: self.raw,
            remaining: self.count,
        }
    }

    /// Materialise every summary.
    pub fn to_owned(&self) -> Vec<StorySummary> {
        self.iter().map(|s| s.to_owned()).collect()
    }
}

/// Iterator over the validated summaries of a [`StoriesRef`].
#[derive(Debug, Clone)]
pub struct SummaryIter<'a> {
    rest: &'a [u8],
    remaining: u32,
}

impl<'a> Iterator for SummaryIter<'a> {
    type Item = SummaryRef<'a>;

    fn next(&mut self) -> Option<SummaryRef<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let before = self.rest;
        let mut cur = self.rest;
        skip_summary(&mut cur).expect("StoriesRef wraps a validated encoding");
        let span = &before[..before.len() - cur.len()];
        self.rest = cur;
        Some(SummaryRef { raw: span })
    }
}

/// Validated, still-encoded per-shard statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsRef<'a> {
    count: u32,
    raw: &'a [u8],
}

impl StatsRef<'_> {
    /// Number of shard entries.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether there are no shard entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Materialise the statistics.
    pub fn to_owned(&self) -> ServeStats {
        let mut rest = self.raw;
        let shards = (0..self.count)
            .map(|_| ShardStats::decode(&mut rest).expect("StatsRef wraps a validated encoding"))
            .collect();
        ServeStats { shards }
    }
}

/// A server → client message decoded without copying out of the frame.
///
/// Produced by [`Response::decode_borrowed`]; accepts and rejects
/// exactly the frames [`Response::decode`] does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResponseRef<'a> {
    /// The id allocated for a registered source.
    SourceAdded(SourceId),
    /// The per-source story the ingested snippet joined.
    Ingested(StoryId),
    /// How many snippets of a batch were ingested.
    BatchIngested(u32),
    /// The story partition (validated, not yet materialised).
    Stories(StoriesRef<'a>),
    /// One story's summary (validated, not yet materialised).
    Story(SummaryRef<'a>),
    /// How many snippets a document removal evicted.
    Removed(u32),
    /// Per-shard statistics (validated, not yet materialised).
    Stats(StatsRef<'a>),
    /// The server drained every queue and wrote its checkpoint.
    ShutdownAck,
    /// The metrics exposition text, borrowed from the frame.
    Metrics {
        /// Prometheus-style text exposition.
        text: &'a str,
    },
    /// The target shard's queue is full; retry after the hint.
    Busy {
        /// Suggested client-side backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The write waited past its deadline budget and was shed unapplied.
    Shed {
        /// Suggested client-side backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The request failed.
    Error {
        /// Coarse error class (see [`error_code`]).
        code: u8,
        /// Human-readable description, borrowed from the frame.
        message: &'a str,
    },
    /// The server is a read-only follower; writes go to the leader.
    NotLeader {
        /// Leader address, borrowed from the frame.
        leader: &'a str,
    },
    /// A batch of WAL records, borrowed from the frame.
    ReplFrame {
        /// The leader's current checkpoint generation.
        generation: u64,
        /// Journal offset the follower should resume from next.
        next_offset: u64,
        /// The leader's total journal length.
        leader_wal_len: u64,
        /// Records in the leader's journal since its last checkpoint.
        leader_ops: u64,
        /// Zero or more whole records, `len|crc|payload` framed.
        records: &'a [u8],
    },
    /// A full bootstrap checkpoint, borrowed from the frame.
    ReplCheckpoint {
        /// The generation these checkpoint bytes represent.
        generation: u64,
        /// Verbatim generation-file bytes (empty = fresh engine).
        checkpoint: &'a [u8],
    },
}

impl ResponseRef<'_> {
    /// Materialise an owned [`Response`] (equal to what
    /// [`Response::decode`] returns for the same frame).
    pub fn to_owned(&self) -> Response {
        match *self {
            ResponseRef::SourceAdded(id) => Response::SourceAdded(id),
            ResponseRef::Ingested(story) => Response::Ingested(story),
            ResponseRef::BatchIngested(n) => Response::BatchIngested(n),
            ResponseRef::Stories(s) => Response::Stories(s.to_owned()),
            ResponseRef::Story(s) => Response::Story(s.to_owned()),
            ResponseRef::Removed(n) => Response::Removed(n),
            ResponseRef::Stats(s) => Response::Stats(s.to_owned()),
            ResponseRef::ShutdownAck => Response::ShutdownAck,
            ResponseRef::Metrics { text } => Response::Metrics {
                text: text.to_string(),
            },
            ResponseRef::Busy { retry_after_ms } => Response::Busy { retry_after_ms },
            ResponseRef::Shed { retry_after_ms } => Response::Shed { retry_after_ms },
            ResponseRef::Error { code, message } => Response::Error {
                code,
                message: message.to_string(),
            },
            ResponseRef::NotLeader { leader } => Response::NotLeader {
                leader: leader.to_string(),
            },
            ResponseRef::ReplFrame {
                generation,
                next_offset,
                leader_wal_len,
                leader_ops,
                records,
            } => Response::ReplFrame {
                generation,
                next_offset,
                leader_wal_len,
                leader_ops,
                records: records.to_vec(),
            },
            ResponseRef::ReplCheckpoint {
                generation,
                checkpoint,
            } => Response::ReplCheckpoint {
                generation,
                checkpoint: checkpoint.to_vec(),
            },
        }
    }
}

impl Response {
    /// Decode a full frame payload without copying; the response-side
    /// twin of [`Request::decode_borrowed`].
    pub fn decode_borrowed(payload: &[u8]) -> Result<ResponseRef<'_>> {
        let buf = &mut &payload[..];
        let op = get_u8(buf, "response opcode")?;
        let resp = match op {
            OP_SOURCE_ADDED => ResponseRef::SourceAdded(SourceId::new(get_u32(buf, "source id")?)),
            OP_INGESTED => ResponseRef::Ingested(StoryId::new(get_u32(buf, "story id")?)),
            OP_BATCH_INGESTED => ResponseRef::BatchIngested(get_u32(buf, "batch count")?),
            OP_STORIES => {
                let n = get_u32(buf, "story count")?;
                need(buf, (n as usize).saturating_mul(24), "story summaries")?;
                let before = *buf;
                for _ in 0..n {
                    skip_summary(buf)?;
                }
                let raw = &before[..before.len() - buf.len()];
                ResponseRef::Stories(StoriesRef { count: n, raw })
            }
            OP_STORY => {
                let before = *buf;
                skip_summary(buf)?;
                let raw = &before[..before.len() - buf.len()];
                ResponseRef::Story(SummaryRef { raw })
            }
            OP_REMOVED => ResponseRef::Removed(get_u32(buf, "removed count")?),
            OP_STATS_REPLY => {
                let n = get_u32(buf, "shard count")?;
                let raw = take(
                    buf,
                    (n as usize).saturating_mul(ShardStats::ENCODED_LEN),
                    "shard stats",
                )?;
                ResponseRef::Stats(StatsRef { count: n, raw })
            }
            OP_SHUTDOWN_ACK => ResponseRef::ShutdownAck,
            OP_METRICS_REPLY => ResponseRef::Metrics {
                text: get_str_ref(buf, "metrics text")?,
            },
            OP_BUSY => ResponseRef::Busy {
                retry_after_ms: get_u32(buf, "retry hint")?,
            },
            OP_SHED => ResponseRef::Shed {
                retry_after_ms: get_u32(buf, "shed retry hint")?,
            },
            OP_ERROR => {
                let code = get_u8(buf, "error code")?;
                let message = get_str_ref(buf, "error message")?;
                ResponseRef::Error { code, message }
            }
            OP_NOT_LEADER => ResponseRef::NotLeader {
                leader: get_str_ref(buf, "leader address")?,
            },
            OP_REPL_FRAME => ResponseRef::ReplFrame {
                generation: get_u64(buf, "repl generation")?,
                next_offset: get_u64(buf, "repl next offset")?,
                leader_wal_len: get_u64(buf, "repl wal length")?,
                leader_ops: get_u64(buf, "repl op count")?,
                records: get_bytes_ref(buf, "repl records")?,
            },
            OP_REPL_CHECKPOINT => ResponseRef::ReplCheckpoint {
                generation: get_u64(buf, "repl generation")?,
                checkpoint: get_bytes_ref(buf, "repl checkpoint")?,
            },
            other => return Err(Error::Codec(format!("unknown response opcode 0x{other:02x}"))),
        };
        if !buf.is_empty() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after response",
                buf.len()
            )));
        }
        Ok(resp)
    }
}

// ---- story summaries -------------------------------------------------

/// A story as reported over the wire: identity, lifespan, members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorySummary {
    /// The per-source story id.
    pub id: StoryId,
    /// The owning source.
    pub source: SourceId,
    /// The story's lifespan.
    pub lifespan: TimeRange,
    /// Member snippets, sorted by id.
    pub members: Vec<SnippetId>,
}

fn encode_summary(buf: &mut impl BufMut, s: &StorySummary) {
    buf.put_u32_le(s.id.raw());
    buf.put_u32_le(s.source.raw());
    buf.put_i64_le(s.lifespan.start.secs());
    buf.put_i64_le(s.lifespan.end.secs());
    buf.put_u32_le(s.members.len() as u32);
    for m in &s.members {
        buf.put_u32_le(m.raw());
    }
}

fn decode_summary(buf: &mut impl Buf) -> Result<StorySummary> {
    let id = StoryId::new(get_u32(buf, "story id")?);
    let source = SourceId::new(get_u32(buf, "story source")?);
    let start = get_i64(buf, "story start")?;
    let end = get_i64(buf, "story end")?;
    let n = get_u32(buf, "member count")? as usize;
    need(buf, n.saturating_mul(4), "story members")?;
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(SnippetId::new(buf.get_u32_le()));
    }
    Ok(StorySummary {
        id,
        source,
        lifespan: TimeRange::new(
            storypivot_types::Timestamp::from_secs(start),
            storypivot_types::Timestamp::from_secs(end),
        ),
        members,
    })
}

// ---- responses -------------------------------------------------------

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The id allocated for a registered source.
    SourceAdded(SourceId),
    /// The per-source story the ingested snippet joined.
    Ingested(StoryId),
    /// How many snippets of a batch were ingested.
    BatchIngested(u32),
    /// The story partition, ordered by story id.
    Stories(Vec<StorySummary>),
    /// One story's summary.
    Story(StorySummary),
    /// How many snippets a document removal evicted.
    Removed(u32),
    /// Per-shard serving statistics.
    Stats(ServeStats),
    /// The server drained every queue and wrote its checkpoint.
    ShutdownAck,
    /// The merged metrics exposition text.
    Metrics {
        /// Prometheus-style text exposition.
        text: String,
    },
    /// The target shard's queue is full; retry after the hint.
    Busy {
        /// Suggested client-side backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The write was admitted but waited in queue past its deadline
    /// budget (`--deadline-ms`) and was shed before touching the
    /// engine. Retrying starts a fresh budget.
    Shed {
        /// Suggested client-side backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The request failed.
    Error {
        /// Coarse error class (see [`error_code`]).
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// The server is a read-only follower; writes go to the leader.
    NotLeader {
        /// Address of the leader that accepts writes.
        leader: String,
    },
    /// A batch of WAL records shipped verbatim from the leader's
    /// journal (CRC-framed exactly as stored on disk).
    ReplFrame {
        /// The leader's current checkpoint generation.
        generation: u64,
        /// Journal offset the follower should resume from next.
        next_offset: u64,
        /// The leader's total journal length (for byte-lag gauges).
        leader_wal_len: u64,
        /// Records in the leader's journal since its last checkpoint
        /// (for op-lag gauges).
        leader_ops: u64,
        /// Zero or more whole records, `len|crc|payload` framed.
        records: Vec<u8>,
    },
    /// A full checkpoint to (re-)bootstrap a follower whose cursor
    /// cannot resume (generation mismatch or offset past the journal).
    ReplCheckpoint {
        /// The generation these checkpoint bytes represent.
        generation: u64,
        /// Verbatim generation-file bytes; empty means "fresh engine"
        /// (the leader has never checkpointed this shard).
        checkpoint: Vec<u8>,
    },
}

/// Map an engine error to its wire code (1 unknown reference,
/// 2 duplicate, 3 parse, 4 codec, 5 config, 6 invariant, 7 i/o,
/// 8 busy-after-retries, 9 not-leader).
pub fn error_code(e: &Error) -> u8 {
    match e {
        Error::UnknownSnippet(_)
        | Error::UnknownStory(_)
        | Error::UnknownGlobalStory(_)
        | Error::UnknownSource(_)
        | Error::UnknownDocument(_) => 1,
        Error::Duplicate(_) => 2,
        Error::Parse(_) => 3,
        Error::Codec(_) => 4,
        Error::InvalidConfig(_) => 5,
        Error::Invariant(_) => 6,
        Error::Io(_) => 7,
        Error::Busy { .. } => 8,
        // NotLeader normally travels as its own opcode; the code exists
        // so from_error stays total.
        Error::NotLeader { .. } => 9,
    }
}

impl Response {
    /// The error response for an engine error.
    pub fn from_error(e: &Error) -> Response {
        Response::Error {
            code: error_code(e),
            message: e.to_string(),
        }
    }

    /// Turn an error response back into an [`Error`] (client side).
    /// [`Response::NotLeader`] becomes the typed
    /// [`Error::NotLeader`] so callers can follow the redirect.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Error { code, message } => Err(match code {
                3 => Error::Parse(message),
                4 => Error::Codec(message),
                5 => Error::InvalidConfig(message),
                6 => Error::Invariant(message),
                _ => Error::Io(format!("server error: {message}")),
            }),
            Response::NotLeader { leader } => Err(Error::NotLeader {
                leader_addr: leader,
            }),
            other => Ok(other),
        }
    }

    /// Encode opcode + body (without the length prefix).
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Response::SourceAdded(id) => {
                buf.put_u8(OP_SOURCE_ADDED);
                buf.put_u32_le(id.raw());
            }
            Response::Ingested(story) => {
                buf.put_u8(OP_INGESTED);
                buf.put_u32_le(story.raw());
            }
            Response::BatchIngested(n) => {
                buf.put_u8(OP_BATCH_INGESTED);
                buf.put_u32_le(*n);
            }
            Response::Stories(stories) => {
                buf.put_u8(OP_STORIES);
                buf.put_u32_le(stories.len() as u32);
                for s in stories {
                    encode_summary(buf, s);
                }
            }
            Response::Story(s) => {
                buf.put_u8(OP_STORY);
                encode_summary(buf, s);
            }
            Response::Removed(n) => {
                buf.put_u8(OP_REMOVED);
                buf.put_u32_le(*n);
            }
            Response::Stats(stats) => {
                buf.put_u8(OP_STATS_REPLY);
                buf.put_u32_le(stats.shards.len() as u32);
                for s in &stats.shards {
                    s.encode(buf);
                }
            }
            Response::ShutdownAck => buf.put_u8(OP_SHUTDOWN_ACK),
            Response::Metrics { text } => {
                buf.put_u8(OP_METRICS_REPLY);
                put_str(buf, text);
            }
            Response::Busy { retry_after_ms } => {
                buf.put_u8(OP_BUSY);
                buf.put_u32_le(*retry_after_ms);
            }
            Response::Shed { retry_after_ms } => {
                buf.put_u8(OP_SHED);
                buf.put_u32_le(*retry_after_ms);
            }
            Response::Error { code, message } => {
                buf.put_u8(OP_ERROR);
                buf.put_u8(*code);
                put_str(buf, message);
            }
            Response::NotLeader { leader } => {
                buf.put_u8(OP_NOT_LEADER);
                put_str(buf, leader);
            }
            Response::ReplFrame {
                generation,
                next_offset,
                leader_wal_len,
                leader_ops,
                records,
            } => {
                buf.put_u8(OP_REPL_FRAME);
                buf.put_u64_le(*generation);
                buf.put_u64_le(*next_offset);
                buf.put_u64_le(*leader_wal_len);
                buf.put_u64_le(*leader_ops);
                put_bytes(buf, records);
            }
            Response::ReplCheckpoint {
                generation,
                checkpoint,
            } => {
                buf.put_u8(OP_REPL_CHECKPOINT);
                buf.put_u64_le(*generation);
                put_bytes(buf, checkpoint);
            }
        }
    }

    /// Decode a full frame payload (opcode + body); trailing bytes are
    /// a codec error.
    pub fn decode(mut payload: &[u8]) -> Result<Response> {
        let buf = &mut payload;
        let op = get_u8(buf, "response opcode")?;
        let resp = match op {
            OP_SOURCE_ADDED => Response::SourceAdded(SourceId::new(get_u32(buf, "source id")?)),
            OP_INGESTED => Response::Ingested(StoryId::new(get_u32(buf, "story id")?)),
            OP_BATCH_INGESTED => Response::BatchIngested(get_u32(buf, "batch count")?),
            OP_STORIES => {
                let n = get_u32(buf, "story count")? as usize;
                need(buf, n.saturating_mul(24), "story summaries")?;
                let mut stories = Vec::with_capacity(n);
                for _ in 0..n {
                    stories.push(decode_summary(buf)?);
                }
                Response::Stories(stories)
            }
            OP_STORY => Response::Story(decode_summary(buf)?),
            OP_REMOVED => Response::Removed(get_u32(buf, "removed count")?),
            OP_STATS_REPLY => {
                let n = get_u32(buf, "shard count")? as usize;
                need(buf, n.saturating_mul(ShardStats::ENCODED_LEN), "shard stats")?;
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(ShardStats::decode(buf)?);
                }
                Response::Stats(ServeStats { shards })
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            OP_METRICS_REPLY => Response::Metrics {
                text: get_str(buf, "metrics text")?,
            },
            OP_BUSY => Response::Busy {
                retry_after_ms: get_u32(buf, "retry hint")?,
            },
            OP_SHED => Response::Shed {
                retry_after_ms: get_u32(buf, "shed retry hint")?,
            },
            OP_ERROR => {
                let code = get_u8(buf, "error code")?;
                let message = get_str(buf, "error message")?;
                Response::Error { code, message }
            }
            OP_NOT_LEADER => Response::NotLeader {
                leader: get_str(buf, "leader address")?,
            },
            OP_REPL_FRAME => Response::ReplFrame {
                generation: get_u64(buf, "repl generation")?,
                next_offset: get_u64(buf, "repl next offset")?,
                leader_wal_len: get_u64(buf, "repl wal length")?,
                leader_ops: get_u64(buf, "repl op count")?,
                records: get_bytes(buf, "repl records")?,
            },
            OP_REPL_CHECKPOINT => Response::ReplCheckpoint {
                generation: get_u64(buf, "repl generation")?,
                checkpoint: get_bytes(buf, "repl checkpoint")?,
            },
            other => return Err(Error::Codec(format!("unknown response opcode 0x{other:02x}"))),
        };
        if buf.has_remaining() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after response",
                buf.remaining()
            )));
        }
        Ok(resp)
    }
}

// ---- shard-stats codec (kept next to the other wire formats) ---------

impl ShardStats {
    /// Fixed encoded size in bytes.
    pub const ENCODED_LEN: usize = 4 * 5 + 8 * 12;

    /// Append the wire encoding.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.shard);
        buf.put_u32_le(self.sources);
        buf.put_u32_le(self.queue_depth);
        buf.put_u32_le(self.queue_capacity);
        buf.put_u32_le(self.stories as u32);
        buf.put_u64_le(self.snippets);
        buf.put_u64_le(self.ingested);
        buf.put_u64_le(self.queries);
        buf.put_u64_le(self.busy_rejections);
        buf.put_u64_le(self.ingest_count);
        buf.put_u64_le(self.ingest_p50_ns);
        buf.put_u64_le(self.ingest_p95_ns);
        buf.put_u64_le(self.ingest_p99_ns);
        buf.put_u64_le(self.wal_bytes);
        buf.put_u64_le(self.last_checkpoint_age_ops);
        buf.put_u64_le(self.restarts);
        buf.put_u64_le(self.quarantined);
    }

    /// Decode one shard's stats.
    pub fn decode(buf: &mut impl Buf) -> Result<ShardStats> {
        need(buf, Self::ENCODED_LEN, "shard stats")?;
        Ok(ShardStats {
            shard: buf.get_u32_le(),
            sources: buf.get_u32_le(),
            queue_depth: buf.get_u32_le(),
            queue_capacity: buf.get_u32_le(),
            stories: buf.get_u32_le() as u64,
            snippets: buf.get_u64_le(),
            ingested: buf.get_u64_le(),
            queries: buf.get_u64_le(),
            busy_rejections: buf.get_u64_le(),
            ingest_count: buf.get_u64_le(),
            ingest_p50_ns: buf.get_u64_le(),
            ingest_p95_ns: buf.get_u64_le(),
            ingest_p99_ns: buf.get_u64_le(),
            wal_bytes: buf.get_u64_le(),
            last_checkpoint_age_ops: buf.get_u64_le(),
            restarts: buf.get_u64_le(),
            quarantined: buf.get_u64_le(),
        })
    }
}

// ---- frame I/O -------------------------------------------------------

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Encode a request or response into a ready-to-send frame.
pub fn frame(encode: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    frame_into(&mut payload, encode);
    payload
}

/// Encode a frame into a reusable buffer (cleared first): the pooled
/// zero-allocation analogue of [`frame`], used by the multiplexed
/// server so steady-state responses never touch the allocator.
pub fn frame_into(out: &mut Vec<u8>, encode: impl FnOnce(&mut Vec<u8>)) {
    out.clear();
    out.extend_from_slice(&[0, 0, 0, 0]);
    encode(out);
    let len = (out.len() - 4) as u32;
    debug_assert!(len <= MAX_FRAME_LEN);
    out[..4].copy_from_slice(&len.to_le_bytes());
}

/// Peek at a read-accumulation buffer: `Ok(Some(total))` when a
/// complete frame spanning `total` bytes (length prefix + payload) is
/// buffered, `Ok(None)` when more bytes are needed. Empty and
/// oversized length prefixes are rejected as soon as the prefix
/// arrives — before the server buffers (or a peer even sends) the
/// body.
pub fn frame_ready(buf: &[u8]) -> Result<Option<usize>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 {
        return Err(Error::Codec("empty frame (no opcode)".into()));
    }
    if len > MAX_FRAME_LEN {
        return Err(Error::Codec(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let total = 4 + len as usize;
    Ok(if buf.len() >= total { Some(total) } else { None })
}

/// Read one frame's payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; a torn frame (EOF mid-length or mid-body), an empty
/// frame, or an oversized length prefix is [`Error::Codec`] — and the
/// oversized case is rejected *before* allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::Codec(format!(
                    "torn frame: connection closed after {filled} of 4 length bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(Error::Codec("empty frame (no opcode)".into()));
    }
    if len > MAX_FRAME_LEN {
        return Err(Error::Codec(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Error::Codec(format!("torn frame: connection closed inside a {len}-byte frame"))
        } else {
            Error::Io(e.to_string())
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, EventType, TermId, Timestamp};

    fn sample_snippet(id: u32) -> Snippet {
        Snippet::builder(SnippetId::new(id), SourceId::new(2), Timestamp::from_ymd(2014, 7, 17))
            .doc(DocId::new(5))
            .entity(EntityId::new(1), 1.5)
            .term(TermId::new(9), 0.25)
            .event_type(EventType::Accident)
            .headline("MH17 down — früh")
            .build()
    }

    fn round_trip_request(req: Request) {
        let f = frame(|b| req.encode(b));
        let mut r: &[u8] = &f;
        let payload = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
        assert!(!r.has_remaining());
    }

    fn round_trip_response(resp: Response) {
        let f = frame(|b| resp.encode(b));
        let mut r: &[u8] = &f;
        let payload = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::AddSource {
            name: "Ümlaut News".into(),
            kind: SourceKind::Blog,
            lag: -3600,
        });
        round_trip_request(Request::IngestSnippet(sample_snippet(7)));
        round_trip_request(Request::IngestBatch(vec![sample_snippet(1), sample_snippet(2)]));
        round_trip_request(Request::IngestBatch(Vec::new()));
        round_trip_request(Request::QueryStories);
        round_trip_request(Request::GetStory(StoryId::new(513)));
        round_trip_request(Request::RemoveDoc(DocId::new(5)));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::ReplSubscribe {
            shard: 3,
            generation: 1 << 40,
            wal_offset: 123_456_789,
        });
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::SourceAdded(SourceId::new(3)));
        round_trip_response(Response::Ingested(StoryId::new(1 << 24)));
        round_trip_response(Response::BatchIngested(9000));
        round_trip_response(Response::Stories(vec![StorySummary {
            id: StoryId::new(42),
            source: SourceId::new(0),
            lifespan: TimeRange::new(Timestamp::from_secs(-5), Timestamp::from_secs(99)),
            members: vec![SnippetId::new(1), SnippetId::new(2)],
        }]));
        round_trip_response(Response::Removed(3));
        round_trip_response(Response::Stats(ServeStats {
            shards: vec![ShardStats {
                shard: 1,
                sources: 2,
                queue_depth: 3,
                queue_capacity: 64,
                stories: 17,
                snippets: 1000,
                ingested: 999,
                queries: 5,
                busy_rejections: 7,
                ingest_count: 999,
                ingest_p50_ns: 1_000,
                ingest_p95_ns: 5_000,
                ingest_p99_ns: 9_000,
                wal_bytes: 4096,
                last_checkpoint_age_ops: 42,
                restarts: 1,
                quarantined: 2,
            }],
        }));
        round_trip_response(Response::ShutdownAck);
        round_trip_response(Response::Metrics {
            text: "# HELP storypivot_ingest_total Snippets ingested.\n\
                   # TYPE storypivot_ingest_total counter\n\
                   storypivot_ingest_total 8\n"
                .into(),
        });
        round_trip_response(Response::Busy { retry_after_ms: 10 });
        round_trip_response(Response::Shed { retry_after_ms: 25 });
        round_trip_response(Response::Error {
            code: 4,
            message: "codec error: torn".into(),
        });
        round_trip_response(Response::NotLeader {
            leader: "127.0.0.1:7411".into(),
        });
        round_trip_response(Response::ReplFrame {
            generation: 7,
            next_offset: 4096,
            leader_wal_len: 8192,
            leader_ops: 12,
            records: vec![0xAB; 37],
        });
        round_trip_response(Response::ReplFrame {
            generation: 0,
            next_offset: 0,
            leader_wal_len: 0,
            leader_ops: 0,
            records: Vec::new(),
        });
        round_trip_response(Response::ReplCheckpoint {
            generation: 2,
            checkpoint: b"SPVC-ish bytes".to_vec(),
        });
        round_trip_response(Response::ReplCheckpoint {
            generation: 0,
            checkpoint: Vec::new(),
        });
    }

    #[test]
    fn not_leader_surfaces_as_a_typed_error() {
        let resp = Response::NotLeader {
            leader: "10.0.0.1:7411".into(),
        };
        match resp.into_result() {
            Err(Error::NotLeader { leader_addr }) => assert_eq!(leader_addr, "10.0.0.1:7411"),
            other => panic!("expected NotLeader, got {other:?}"),
        }
    }

    #[test]
    fn garbage_opcodes_are_codec_errors() {
        assert!(matches!(Request::decode(&[0x7F]), Err(Error::Codec(_))));
        assert!(matches!(Response::decode(&[0x01]), Err(Error::Codec(_))));
        assert!(matches!(Request::decode(&[]), Err(Error::Codec(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Vec::new();
        Request::QueryStories.encode(&mut payload);
        payload.push(0xEE);
        assert!(matches!(Request::decode(&payload), Err(Error::Codec(_))));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&u32::MAX.to_le_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &framed[..]).unwrap_err();
        assert!(err.to_string().contains("oversized"), "{err}");
    }

    #[test]
    fn torn_frames_are_codec_errors_clean_eof_is_none() {
        // Clean EOF at a boundary.
        assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
        // EOF inside the length prefix.
        let err = read_frame(&mut &[1u8, 0][..]).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // EOF inside the body.
        let full = frame(|b| Request::Stats.encode(b));
        let err = read_frame(&mut &full[..full.len() - 1][..]).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // Zero-length frame.
        let err = read_frame(&mut &[0u8, 0, 0, 0][..]).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn truncated_metrics_reply_is_codec_error() {
        let mut payload = Vec::new();
        payload.put_u8(OP_METRICS_REPLY);
        payload.put_u32_le(1000);
        payload.put_slice(b"short");
        assert!(matches!(Response::decode(&payload), Err(Error::Codec(_))));
    }

    #[test]
    fn absurd_batch_count_rejected_before_allocation() {
        let mut payload = Vec::new();
        payload.put_u8(OP_INGEST_BATCH);
        payload.put_u32_le(u32::MAX);
        assert!(matches!(Request::decode(&payload), Err(Error::Codec(_))));
        assert!(Request::decode_borrowed(&payload).is_err());
    }

    #[test]
    fn borrowed_request_decode_matches_owned() {
        let reqs = vec![
            Request::AddSource {
                name: "Ümlaut News".into(),
                kind: SourceKind::Blog,
                lag: -3600,
            },
            Request::IngestSnippet(sample_snippet(7)),
            Request::IngestBatch(vec![sample_snippet(1), sample_snippet(2)]),
            Request::IngestBatch(Vec::new()),
            Request::QueryStories,
            Request::GetStory(StoryId::new(513)),
            Request::RemoveDoc(DocId::new(5)),
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::ReplSubscribe {
                shard: 1,
                generation: 9,
                wal_offset: 640,
            },
        ];
        for req in reqs {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            let borrowed = Request::decode_borrowed(&payload).unwrap();
            assert_eq!(borrowed.to_owned(), req);
        }
    }

    #[test]
    fn borrowed_batch_exposes_routing_headers() {
        let batch = vec![sample_snippet(1), sample_snippet(2), sample_snippet(3)];
        let mut payload = Vec::new();
        Request::IngestBatch(batch.clone()).encode(&mut payload);
        match Request::decode_borrowed(&payload).unwrap() {
            RequestRef::IngestBatch(b) => {
                assert_eq!(b.len(), 3);
                let headers: Vec<_> = b.iter().map(|s| (s.id, s.source)).collect();
                assert_eq!(
                    headers,
                    batch.iter().map(|s| (s.id, s.source)).collect::<Vec<_>>()
                );
                for (r, owned) in b.iter().zip(&batch) {
                    assert_eq!(&r.to_owned(), owned);
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn borrowed_response_decode_matches_owned() {
        let resps = vec![
            Response::SourceAdded(SourceId::new(3)),
            Response::Ingested(StoryId::new(1 << 24)),
            Response::BatchIngested(9000),
            Response::Stories(vec![StorySummary {
                id: StoryId::new(42),
                source: SourceId::new(0),
                lifespan: TimeRange::new(Timestamp::from_secs(-5), Timestamp::from_secs(99)),
                members: vec![SnippetId::new(1), SnippetId::new(2)],
            }]),
            Response::Removed(3),
            Response::ShutdownAck,
            Response::Metrics {
                text: "storypivot_ingest_total 8\n".into(),
            },
            Response::Busy { retry_after_ms: 10 },
            Response::Shed { retry_after_ms: 25 },
            Response::Error {
                code: 4,
                message: "codec error: torn".into(),
            },
            Response::NotLeader {
                leader: "127.0.0.1:7411".into(),
            },
            Response::ReplFrame {
                generation: 7,
                next_offset: 4096,
                leader_wal_len: 8192,
                leader_ops: 12,
                records: vec![0xAB; 37],
            },
            Response::ReplCheckpoint {
                generation: 2,
                checkpoint: b"SPVC-ish bytes".to_vec(),
            },
        ];
        for resp in resps {
            let mut payload = Vec::new();
            resp.encode(&mut payload);
            let borrowed = Response::decode_borrowed(&payload).unwrap();
            assert_eq!(borrowed.to_owned(), resp);
        }
    }

    #[test]
    fn borrowed_decode_rejects_trailing_and_truncated() {
        let mut payload = Vec::new();
        Request::QueryStories.encode(&mut payload);
        payload.push(0xEE);
        assert!(Request::decode_borrowed(&payload).is_err());

        let mut payload = Vec::new();
        Request::IngestSnippet(sample_snippet(1)).encode(&mut payload);
        for cut in 1..payload.len() {
            assert_eq!(
                Request::decode_borrowed(&payload[..cut]).is_err(),
                Request::decode(&payload[..cut]).is_err(),
                "borrowed/owned disagree at cut {cut}"
            );
        }
    }

    #[test]
    fn frame_ready_tracks_partial_frames() {
        let full = frame(|b| Request::Stats.encode(b));
        for cut in 0..full.len() {
            assert_eq!(frame_ready(&full[..cut]).unwrap(), None, "cut {cut}");
        }
        assert_eq!(frame_ready(&full).unwrap(), Some(full.len()));
        // Pipelined second frame does not confuse the boundary.
        let mut two = full.clone();
        two.extend_from_slice(&full);
        assert_eq!(frame_ready(&two).unwrap(), Some(full.len()));
        // Hostile prefixes rejected as soon as the 4 length bytes land.
        assert!(frame_ready(&[0, 0, 0, 0]).is_err());
        assert!(frame_ready(&u32::MAX.to_le_bytes()).is_err());
    }

    #[test]
    fn frame_into_reuses_a_buffer_without_allocating_beyond_capacity() {
        let mut buf = Vec::with_capacity(256);
        frame_into(&mut buf, |b| Response::Ingested(StoryId::new(9)).encode(b));
        let first = buf.clone();
        frame_into(&mut buf, |b| Response::Ingested(StoryId::new(9)).encode(b));
        assert_eq!(buf, first);
        assert_eq!(buf, frame(|b| Response::Ingested(StoryId::new(9)).encode(b)));
    }
}
