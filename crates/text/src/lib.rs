//! Text substrate for StoryPivot.
//!
//! The paper delegates annotation to EventRegistry + OpenCalais
//! (paper §2.1, "black box extraction mechanism"). This crate is the
//! stand-in: a small, deterministic NLP toolkit sufficient to turn raw
//! article text into the weighted entity/term representation the story
//! detection algorithms consume.
//!
//! Components:
//!
//! * [`interner`] — id ⇄ string interning for entities and terms;
//! * [`mod@tokenize`] — word tokenizer;
//! * [`stopwords`] — English stopword filter;
//! * [`stem`] — a full Porter stemmer;
//! * [`ahocorasick`] — multi-pattern string matching automaton;
//! * [`gazetteer`] — dictionary-based named entity recognition built on
//!   the automaton (the OpenCalais stand-in for entities);
//! * [`tfidf`] — incremental corpus statistics and TF-IDF weighting
//!   (the stand-in for keyword annotations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ahocorasick;
pub mod gazetteer;
pub mod interner;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod tokenize;

pub use ahocorasick::{AhoCorasick, AhoCorasickBuilder, Match};
pub use gazetteer::{Gazetteer, GazetteerBuilder, RecognizedEntity};
pub use interner::Interner;
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tfidf::{CorpusStats, TfIdf};
pub use tokenize::{tokenize, Token};
