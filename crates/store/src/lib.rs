//! Event storage for StoryPivot.
//!
//! Repositories like GDELT and EventRegistry deliver extracted event
//! tuples continuously (paper §1); StoryPivot needs to retrieve them by
//! source and time window (story identification, §2.2), by shared entity
//! (candidate generation for alignment, §2.3), and by document (the
//! demo's add/remove interaction, §4.2.1). This crate is that storage
//! layer:
//!
//! * [`EventStore`] — the canonical snippet repository with per-source
//!   temporal indexes, an entity inverted index, and a document index;
//!   supports out-of-order insertion and removal.
//! * [`window`] — the per-source sliding-window index.
//! * [`inverted`] — a generic inverted index with overlap-counted
//!   candidate retrieval.
//! * [`codec`] — a hand-rolled length-prefixed binary codec (on
//!   [`bytes`]) for snippets and whole-store snapshots.
//! * [`shared`] — a thread-safe shared handle (readers–writer lock) so
//!   interactive queries can run while ingestion writes;
//! * [`snapshot`] — durable save/load of an [`EventStore`];
//! * [`wal`] — a CRC-framed write-ahead log for incremental durability
//!   between snapshots (torn tails are detected and discarded).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod event_store;
pub mod inverted;
pub mod shared;
pub mod snapshot;
pub mod wal;
pub mod window;

pub use event_store::{EventStore, StoreStats};
pub use shared::SharedEventStore;
pub use inverted::InvertedIndex;
pub use wal::{replay, ReplayReport, Wal};
pub use window::WindowIndex;
