//! E3 — identification cost as a function of the window size ω (§2.2).

use storypivot_bench::{corpus_fixed_period, pivot_for};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;
use storypivot_types::DAY;

fn main() {
    let corpus = corpus_fixed_period(800, 8, 13);
    let mut group = BenchGroup::from_env("e3_window_sweep");
    for days in [1i64, 7, 14, 30, 90] {
        let cfg = PivotConfig::temporal(days * DAY);
        group.bench(&format!("{days}d"), || {
            let mut pivot = pivot_for(&corpus, cfg.clone());
            for s in &corpus.snippets {
                pivot.ingest(s.clone()).unwrap();
            }
            pivot.story_count()
        });
    }
    group.finish();
}
