//! Seeded property tests for the crash-safe journal (`substrate::wal`):
//! append/scan round-trips, and truncate-at-first-corruption under bit
//! flips, torn tails, and mid-record EOF. Replay a failing case with
//! `STORYPIVOT_PROP_SEED=<seed>`.

use std::path::PathBuf;

use storypivot_substrate::prop;
use storypivot_substrate::rng::{RngExt, StdRng};
use storypivot_substrate::wal::{self, SyncPolicy, Wal, RECORD_OVERHEAD};

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "storypivot-walprop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn random_payload(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.random_range(0..200usize);
    (0..len).map(|_| rng.random::<u8>()).collect()
}

fn random_policy(rng: &mut StdRng) -> SyncPolicy {
    match rng.random_range(0..3u32) {
        0 => SyncPolicy::Always,
        1 => SyncPolicy::EveryN(rng.random_range(1..8u32)),
        _ => SyncPolicy::Never,
    }
}

#[test]
fn appended_records_round_trip_through_scan() {
    prop::run(48, |rng| {
        let dir = scratch("roundtrip", rng.random());
        let path = dir.join("j.wal");
        let payloads = prop::vec_with(rng, 0, 40, random_payload);
        let policy = random_policy(rng);
        {
            let (mut wal, scan) = Wal::open(&path, policy).unwrap();
            assert!(scan.records.is_empty() && !scan.damaged());
            for p in &payloads {
                wal.append(p).unwrap();
            }
            let expected: u64 = payloads
                .iter()
                .map(|p| p.len() as u64 + RECORD_OVERHEAD)
                .sum();
            assert_eq!(wal.len(), expected);
        }
        // Scan the raw file and reopen: both must return every record
        // byte-for-byte, in order, with nothing dropped.
        let scanned = wal::scan(&path).unwrap();
        assert_eq!(scanned.records, payloads);
        assert!(!scanned.damaged());
        let (reopened, scan) = Wal::open(&path, policy).unwrap();
        assert_eq!(scan.records, payloads);
        assert_eq!(reopened.len(), scan.valid_len);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn torn_tail_is_dropped_and_prefix_survives() {
    prop::run(48, |rng| {
        let dir = scratch("torn", rng.random());
        let path = dir.join("j.wal");
        // Non-empty payloads so truncating mid-record always tears.
        let payloads = prop::vec_with(rng, 1, 24, |r| {
            let len = r.random_range(1..120usize);
            (0..len).map(|_| r.random::<u8>()).collect::<Vec<u8>>()
        });
        {
            let (mut wal, _) = Wal::open(&path, SyncPolicy::Never).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Record boundaries, to know how many complete records a given
        // truncation point preserves.
        let mut boundaries = vec![0u64];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + RECORD_OVERHEAD + p.len() as u64);
        }
        // Tear at a random byte: simulates SIGKILL mid-write (torn tail
        // or mid-record EOF, depending on where the cut lands).
        let cut = rng.random_range(0..full.len());
        std::fs::write(&path, &full[..cut]).unwrap();
        let intact = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
        let scanned = wal::scan(&path).unwrap();
        assert_eq!(
            scanned.records,
            payloads[..intact],
            "cut at {cut} must preserve exactly {intact} records"
        );
        assert_eq!(scanned.valid_len, boundaries[intact]);
        assert_eq!(scanned.damaged(), cut as u64 != boundaries[intact]);

        // Opening repairs: the file shrinks to the valid prefix and new
        // appends land cleanly after it.
        let (mut wal, scan) = Wal::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(scan.records.len(), intact);
        wal.append(b"after-repair").unwrap();
        drop(wal);
        let rescanned = wal::scan(&path).unwrap();
        assert!(!rescanned.damaged());
        assert_eq!(rescanned.records.len(), intact + 1);
        assert_eq!(rescanned.records[intact], b"after-repair");
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn bit_flips_never_yield_phantom_records() {
    prop::run(48, |rng| {
        let dir = scratch("flip", rng.random());
        let path = dir.join("j.wal");
        let payloads = prop::vec_with(rng, 1, 16, |r| {
            let len = r.random_range(1..80usize);
            (0..len).map(|_| r.random::<u8>()).collect::<Vec<u8>>()
        });
        {
            let (mut wal, _) = Wal::open(&path, SyncPolicy::Never).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = rng.random_range(0..bytes.len());
        bytes[victim] ^= 1 << rng.random_range(0..8u32);
        std::fs::write(&path, &bytes).unwrap();

        let mut boundaries = vec![0u64];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + RECORD_OVERHEAD + p.len() as u64);
        }
        let scanned = wal::scan(&path).unwrap();
        // The scan stops at the first record touching the flipped byte:
        // every record it *does* return precedes the flip and is intact.
        // (A flip in a length field can claim a longer record that still
        // checksums wrong or runs past EOF — never a phantom success.)
        let intact_before_flip = boundaries
            .iter()
            .filter(|&&b| b <= victim as u64)
            .count()
            - 1;
        assert!(
            scanned.records.len() <= intact_before_flip,
            "flip at byte {victim} cannot leave {} records (only {} precede it)",
            scanned.records.len(),
            intact_before_flip
        );
        for (i, rec) in scanned.records.iter().enumerate() {
            assert_eq!(rec, &payloads[i], "record {i} before the flip must be intact");
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}
