//! Epoch-versioned, immutable per-shard read snapshots.
//!
//! Every QUERY_STORIES and GET_STORY used to ride the same bounded
//! MPSC queue as ingest, so a read flash-crowd competed with writes
//! for shard-worker time. Instead, each shard worker now periodically
//! publishes a [`ShardSnapshot`] — an immutable, id-sorted copy of its
//! story partition — into a [`SnapshotSlot`]. Publication is an `Arc`
//! swap behind a readers–writer lock held for nanoseconds: readers
//! clone the `Arc` and release the lock, so queries never block the
//! writer and the writer never blocks queries. I/O workers answer
//! reads directly from the slots on the connection's own thread,
//! bypassing the shard queues entirely.
//!
//! Freshness is a policy, not an accident: the worker republishes
//! after every `snapshot_every_ops` applied mutations or whenever the
//! current snapshot is older than `snapshot_max_age_ms`, whichever
//! trips first (see [`crate::server::ServerConfig`]). The default of
//! one op per epoch preserves read-your-writes exactly: a client that
//! saw its ingest acked is guaranteed the next query reflects it,
//! because the worker publishes before it replies.

use std::sync::Arc;

use crate::proto::StorySummary;
use storypivot_substrate::Shared;
use storypivot_types::StoryId;

/// An immutable snapshot of one shard's story partition.
#[derive(Debug, Default)]
pub struct ShardSnapshot {
    /// Publication sequence number: bumped on every publish, starting
    /// at 1 for the post-recovery snapshot (epoch 0 is the empty
    /// pre-recovery placeholder).
    pub epoch: u64,
    /// Every story on the shard, sorted by story id; member lists are
    /// sorted too (the engine's partition order).
    pub stories: Vec<StorySummary>,
}

impl ShardSnapshot {
    /// Look up one story by id (binary search over the sorted vec).
    pub fn get(&self, id: StoryId) -> Option<&StorySummary> {
        self.stories
            .binary_search_by_key(&id, |s| s.id)
            .ok()
            .map(|i| &self.stories[i])
    }
}

/// A cloneable slot holding a shard's newest published snapshot.
///
/// The shard worker is the only publisher; I/O workers (and tests) are
/// the readers. Swap-on-publish means a reader that loaded the old
/// `Arc` keeps a consistent view for as long as it likes without
/// holding any lock.
#[derive(Clone, Debug, Default)]
pub struct SnapshotSlot {
    inner: Shared<Arc<ShardSnapshot>>,
}

impl SnapshotSlot {
    /// An empty epoch-0 slot (what readers see before recovery ends).
    pub fn new() -> SnapshotSlot {
        SnapshotSlot {
            inner: Shared::new(Arc::new(ShardSnapshot::default())),
        }
    }

    /// Swap in a freshly built snapshot.
    pub fn publish(&self, snap: Arc<ShardSnapshot>) {
        *self.inner.write() = snap;
    }

    /// Clone out the current snapshot; the lock is held only for the
    /// `Arc` clone.
    pub fn load(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{SnippetId, SourceId, TimeRange, Timestamp};

    fn summary(id: u32) -> StorySummary {
        StorySummary {
            id: StoryId::new(id),
            source: SourceId::new(1),
            lifespan: TimeRange::new(Timestamp::from_secs(0), Timestamp::from_secs(1)),
            members: vec![SnippetId::new(id)],
        }
    }

    #[test]
    fn get_binary_searches_the_sorted_stories() {
        let snap = ShardSnapshot {
            epoch: 1,
            stories: vec![summary(2), summary(5), summary(9)],
        };
        assert_eq!(snap.get(StoryId::new(5)).unwrap().id, StoryId::new(5));
        assert!(snap.get(StoryId::new(4)).is_none());
        assert!(ShardSnapshot::default().get(StoryId::new(0)).is_none());
    }

    #[test]
    fn publish_swaps_for_every_clone_and_old_readers_keep_their_view() {
        let slot = SnapshotSlot::new();
        let reader = slot.clone();
        assert_eq!(reader.load().epoch, 0);
        let old = reader.load();
        slot.publish(Arc::new(ShardSnapshot {
            epoch: 1,
            stories: vec![summary(3)],
        }));
        // The clone sees the new epoch; the Arc loaded earlier still
        // reads the old, consistent view.
        assert_eq!(reader.load().epoch, 1);
        assert_eq!(old.epoch, 0);
        assert!(old.stories.is_empty());
    }
}
