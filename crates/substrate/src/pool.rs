//! A checkout/checkin byte-buffer pool.
//!
//! The multiplexed serving runtime holds one read buffer per
//! connection *with bytes in flight* and one write buffer per queued
//! response. Allocating those from the global heap per frame would put
//! the allocator on the hot path of every request; this pool recycles
//! fixed-class `Vec<u8>` buffers instead and exposes the counters the
//! serving gauges need (`outstanding`, `bytes_highwater`).
//!
//! Semantics:
//!
//! * [`BufferPool::checkout`] hands out a cleared [`PooledBuf`] with at
//!   least the pool's class capacity, reusing a free buffer when one is
//!   available (a fresh allocation is counted as a `miss`).
//! * Dropping a [`PooledBuf`] returns it to the free list, unless the
//!   buffer grew past four times the class size (returning jumbo
//!   buffers would let one oversized frame pin memory forever) or the
//!   free list is already at `max_free`.
//! * Accounting charges each checkout at its capacity at checkout
//!   time; `bytes_highwater` is the maximum concurrently-charged total
//!   the pool has ever seen, which bounds steady-state buffer memory.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A point-in-time view of pool accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers currently checked out.
    pub outstanding: u64,
    /// Buffers currently idle on the free list.
    pub free: u64,
    /// Total checkouts since the pool was created.
    pub checkouts: u64,
    /// Checkouts that had to allocate because the free list was empty.
    pub misses: u64,
    /// Bytes (of capacity) currently charged to checked-out buffers.
    pub bytes_outstanding: u64,
    /// High-water mark of `bytes_outstanding`.
    pub bytes_highwater: u64,
}

struct Inner {
    free: Mutex<Vec<Vec<u8>>>,
    buf_capacity: usize,
    max_free: usize,
    outstanding: AtomicU64,
    checkouts: AtomicU64,
    misses: AtomicU64,
    bytes_outstanding: AtomicU64,
    bytes_highwater: AtomicU64,
}

/// A cloneable handle to a pool of same-class byte buffers.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("buf_capacity", &self.inner.buf_capacity)
            .field("outstanding", &s.outstanding)
            .field("free", &s.free)
            .finish()
    }
}

impl BufferPool {
    /// A pool of buffers with `buf_capacity` bytes each, keeping at
    /// most `max_free` idle buffers around.
    pub fn new(buf_capacity: usize, max_free: usize) -> Self {
        assert!(buf_capacity > 0, "pool buffers need nonzero capacity");
        BufferPool {
            inner: Arc::new(Inner {
                free: Mutex::new(Vec::new()),
                buf_capacity,
                max_free,
                outstanding: AtomicU64::new(0),
                checkouts: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                bytes_outstanding: AtomicU64::new(0),
                bytes_highwater: AtomicU64::new(0),
            }),
        }
    }

    fn free_list(&self) -> std::sync::MutexGuard<'_, Vec<Vec<u8>>> {
        match self.inner.free.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The per-buffer capacity class.
    pub fn buf_capacity(&self) -> usize {
        self.inner.buf_capacity
    }

    /// Check out an empty buffer with at least `buf_capacity` bytes of
    /// capacity. Allocates only when the free list is empty.
    pub fn checkout(&self) -> PooledBuf {
        let buf = self.free_list().pop();
        let buf = match buf {
            Some(b) => b,
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.buf_capacity)
            }
        };
        let charged = buf.capacity() as u64;
        self.inner.checkouts.fetch_add(1, Ordering::Relaxed);
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        let now = self
            .inner
            .bytes_outstanding
            .fetch_add(charged, Ordering::Relaxed)
            + charged;
        self.inner.bytes_highwater.fetch_max(now, Ordering::Relaxed);
        PooledBuf {
            buf,
            charged,
            pool: Arc::clone(&self.inner),
        }
    }

    /// Current accounting.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            outstanding: self.inner.outstanding.load(Ordering::Relaxed),
            free: self.free_list().len() as u64,
            checkouts: self.inner.checkouts.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            bytes_outstanding: self.inner.bytes_outstanding.load(Ordering::Relaxed),
            bytes_highwater: self.inner.bytes_highwater.load(Ordering::Relaxed),
        }
    }
}

/// A pooled `Vec<u8>`; derefs to the vector and returns itself to the
/// pool on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    charged: u64,
    pool: Arc<Inner>,
}

impl PooledBuf {
    /// The underlying vector, for APIs that want `&mut Vec<u8>`
    /// explicitly (e.g. `impl BufMut` argument positions, where
    /// auto-deref does not apply).
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buf.len())
            .field("capacity", &self.buf.capacity())
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.pool
            .bytes_outstanding
            .fetch_sub(self.charged, Ordering::Relaxed);
        // Return to the free list unless the buffer ballooned or the
        // list is full; either way the caller's Vec is gone after this.
        if self.buf.capacity() <= self.pool.buf_capacity * 4 {
            let mut free = match self.pool.free.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if free.len() < self.pool.max_free {
                let mut buf = std::mem::take(&mut self.buf);
                buf.clear();
                free.push(buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_buffers() {
        let pool = BufferPool::new(1024, 8);
        let a = pool.checkout();
        assert_eq!(a.capacity(), 1024);
        assert_eq!(pool.stats().misses, 1);
        drop(a);
        assert_eq!(pool.stats().free, 1);
        let b = pool.checkout();
        assert_eq!(pool.stats().misses, 1, "second checkout hits the free list");
        assert_eq!(b.len(), 0, "returned buffers come back cleared");
    }

    #[test]
    fn accounting_tracks_outstanding_and_highwater() {
        let pool = BufferPool::new(100, 8);
        let a = pool.checkout();
        let b = pool.checkout();
        let s = pool.stats();
        assert_eq!(s.outstanding, 2);
        assert_eq!(s.bytes_outstanding, 200);
        assert_eq!(s.bytes_highwater, 200);
        drop(a);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.bytes_outstanding, 0);
        assert_eq!(s.bytes_highwater, 200, "highwater is sticky");
    }

    #[test]
    fn ballooned_buffers_are_not_pooled() {
        let pool = BufferPool::new(64, 8);
        let mut a = pool.checkout();
        a.extend_from_slice(&vec![0u8; 64 * 16]);
        drop(a);
        assert_eq!(pool.stats().free, 0, "jumbo buffer was dropped, not pooled");
    }

    #[test]
    fn free_list_is_capped() {
        let pool = BufferPool::new(16, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        drop(bufs);
        assert_eq!(pool.stats().free, 2);
    }

    #[test]
    fn buffers_work_as_bufmut_sinks() {
        use crate::buf::BufMut;
        let pool = BufferPool::new(32, 4);
        let mut b = pool.checkout();
        b.as_mut_vec().put_u32_le(7);
        b.push(9);
        assert_eq!(&b[..], &[7, 0, 0, 0, 9]);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = BufferPool::new(64, 32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let mut b = pool.checkout();
                        b.push(1);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.checkouts, 400);
    }
}
