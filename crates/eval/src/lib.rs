//! Evaluation toolkit: clustering quality metrics, latency recording,
//! and the experiment runner that regenerates the paper's Figure 7
//! measurements (execution time and F-measure as functions of the
//! number of processed events, per SI/SA method).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod run;
pub mod table;
pub mod timing;

pub use metrics::{adjusted_rand_index, bcubed, nmi, pairwise, purity, Clustering, Scores};
pub use run::{run, RunOptions, RunResult};
pub use table::Table;
pub use timing::LatencyRecorder;
