//! Per-shard serving statistics surfaced through the STATS frame.

/// One shard's counters and latency percentiles at the moment the
/// STATS job reached it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index (0-based).
    pub shard: u32,
    /// Sources registered on this shard.
    pub sources: u32,
    /// Jobs currently waiting in the shard queue.
    pub queue_depth: u32,
    /// The shard queue's fixed capacity.
    pub queue_capacity: u32,
    /// Per-source stories alive on this shard.
    pub stories: u64,
    /// Snippets stored on this shard.
    pub snippets: u64,
    /// Snippets ingested since startup (includes removed ones).
    pub ingested: u64,
    /// Query jobs (story partition / single story) served.
    pub queries: u64,
    /// Ingests rejected with BUSY because this shard's queue was full.
    pub busy_rejections: u64,
    /// Observations in the ingest latency histogram.
    pub ingest_count: u64,
    /// Median per-snippet ingest latency (engine time, nanoseconds).
    pub ingest_p50_ns: u64,
    /// 95th-percentile ingest latency (nanoseconds).
    pub ingest_p95_ns: u64,
    /// 99th-percentile ingest latency (nanoseconds).
    pub ingest_p99_ns: u64,
    /// Bytes currently in this shard's write-ahead log (0 when the WAL
    /// is disabled or freshly truncated by a checkpoint).
    pub wal_bytes: u64,
    /// Mutating operations applied since the last checkpoint (the
    /// replay debt a crash right now would incur).
    pub last_checkpoint_age_ops: u64,
    /// Panics caught in this shard's worker; each one rebuilt the
    /// engine from checkpoint + WAL.
    pub restarts: u64,
    /// Operations quarantined to the dead-letter file after killing the
    /// shard twice.
    pub quarantined: u64,
}

/// The whole server's statistics: one entry per shard, ordered by
/// shard index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Per-shard statistics.
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Snippets stored across all shards.
    pub fn total_snippets(&self) -> u64 {
        self.shards.iter().map(|s| s.snippets).sum()
    }

    /// Snippets ingested across all shards since startup.
    pub fn total_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.ingested).sum()
    }

    /// BUSY rejections across all shards.
    pub fn total_busy(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_rejections).sum()
    }

    /// Stories alive across all shards.
    pub fn total_stories(&self) -> u64 {
        self.shards.iter().map(|s| s.stories).sum()
    }

    /// Worker restarts (caught panics) across all shards.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Quarantined (dead-lettered) operations across all shards.
    pub fn total_quarantined(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined).sum()
    }

    /// A compact multi-line human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard {}: {} sources, {} stories, {} snippets, queue {}/{}, \
                 ingested {} (busy {}), ingest p50/p95/p99 {:.1}/{:.1}/{:.1} µs, \
                 wal {} B (age {} ops), restarts {}, quarantined {}",
                s.shard,
                s.sources,
                s.stories,
                s.snippets,
                s.queue_depth,
                s.queue_capacity,
                s.ingested,
                s.busy_rejections,
                s.ingest_p50_ns as f64 / 1e3,
                s.ingest_p95_ns as f64 / 1e3,
                s.ingest_p99_ns as f64 / 1e3,
                s.wal_bytes,
                s.last_checkpoint_age_ops,
                s.restarts,
                s.quarantined,
            );
        }
        if self.shards.len() > 1 {
            // Counters sum cleanly across shards; percentiles do NOT
            // (a p50 of p50s is not the merged p50), so the footer
            // sticks to totals — the METRICS exposition merges the full
            // histograms bucket-wise for true cross-shard percentiles.
            let _ = writeln!(
                out,
                "total: {} stories, {} snippets, ingested {} (busy {}), restarts {}, \
                 quarantined {}",
                self.total_stories(),
                self.total_snippets(),
                self.total_ingested(),
                self.total_busy(),
                self.total_restarts(),
                self.total_quarantined(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_shards() {
        let stats = ServeStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    snippets: 10,
                    ingested: 12,
                    busy_rejections: 1,
                    stories: 3,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    snippets: 5,
                    ingested: 5,
                    busy_rejections: 0,
                    stories: 2,
                    ..ShardStats::default()
                },
            ],
        };
        assert_eq!(stats.total_snippets(), 15);
        assert_eq!(stats.total_ingested(), 17);
        assert_eq!(stats.total_busy(), 1);
        assert_eq!(stats.total_stories(), 5);
        // Two shard lines plus the totals footer.
        let render = stats.render();
        assert_eq!(render.lines().count(), 3);
        assert!(render.lines().last().unwrap().starts_with("total:"));
    }
}
