//! E6 — incremental re-alignment after onboarding new sources vs a full
//! alignment pass (§2.1).

use storypivot_bench::{corpus_fixed_period, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;

fn main() {
    let corpus = corpus_fixed_period(1_000, 12, 23);
    // Pre-state: 10 sources ingested and aligned; sources 10-11 ingested
    // but not yet aligned.
    let mut base = pivot_for(&corpus, PivotConfig::temporal(OMEGA));
    for s in &corpus.snippets {
        if s.source.raw() < 10 {
            base.ingest(s.clone()).unwrap();
        }
    }
    base.align();
    for s in &corpus.snippets {
        if s.source.raw() >= 10 {
            base.ingest(s.clone()).unwrap();
        }
    }

    let mut group = BenchGroup::from_env("e6_onboarding");
    group.bench("incremental_realign", || {
        let mut p = base.clone();
        p.align_incremental();
        p.global_stories().len()
    });
    group.bench("full_realign", || {
        let mut p = base.clone();
        p.align();
        p.global_stories().len()
    });
    group.finish();
}
