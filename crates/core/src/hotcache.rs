//! Zipf-aware cache of pre-folded windowed story centroids.
//!
//! The identification scoring loop needs, per candidate story, the sum
//! of the story's *windowed* members' entity and term vectors. Snippet
//! traffic is Zipf-skewed (the generator models this explicitly), so a
//! handful of hot stories absorb most comparisons — and their windowed
//! member list barely changes between consecutive probes. This cache
//! keeps those folds alive across probes.
//!
//! ## Correctness model
//!
//! A cache entry stores the member-id list it was folded from, in fold
//! order. On lookup the caller compares that list against the current
//! windowed member list:
//!
//! * **exact match** — the fold is current, reuse it (hit);
//! * **prefix match** — the window grew at the trailing edge (window
//!   queries return ascending `(timestamp, id)` order, so new members of
//!   a story append); fold only the tail (hit);
//! * **anything else** — refold from scratch (miss).
//!
//! Because snippets are immutable and the fold is a pure function of the
//! member list, list equality *implies* vector validity — the cache is
//! self-validating, and the explicit [`HotStoryCache::invalidate`] calls
//! on merge/split/removal are hygiene (they free capacity early and keep
//! hit accounting honest) rather than load-bearing. Fold results are
//! bit-identical whether resumed from a prefix or rebuilt, because
//! `SparseVec::merge_add` applies the same additions in the same order
//! either way. That is what makes partitions byte-identical with the
//! cache on or off.
//!
//! ## Eviction
//!
//! Capacity-bounded, evict-least-frequently-used with the story id as a
//! deterministic tie-break. Entries for stories referenced by the probe
//! currently being scored are never evicted (the caller marks them
//! protected); if every resident entry is protected, the new story is
//! simply not admitted and the caller folds into local scratch instead.

use std::collections::HashMap;

use storypivot_types::{EntityId, SnippetId, SparseVec, StoryId, TermId};

/// One cached story: the windowed member list a fold was computed from,
/// and the folded entity/term sums.
#[derive(Debug, Clone, Default)]
pub struct CacheEntry {
    /// Member snippet ids, in window (fold) order.
    pub members: Vec<SnippetId>,
    /// Sum of the members' entity vectors.
    pub entities: SparseVec<EntityId>,
    /// Sum of the members' term vectors.
    pub terms: SparseVec<TermId>,
    /// Lookup count (LFU eviction key).
    pub uses: u64,
}

impl CacheEntry {
    /// Drop the fold but keep the allocations for reuse.
    pub fn reset(&mut self) {
        self.members.clear();
        self.entities.clear();
        self.terms.clear();
        self.uses = 0;
    }
}

/// One slab slot: a cache entry plus the story it currently serves.
///
/// Dead slots (`live == false`) keep their `CacheEntry` allocations so
/// the next admission reuses them instead of allocating fresh vectors.
#[derive(Debug, Clone)]
struct Slot {
    story: StoryId,
    live: bool,
    entry: CacheEntry,
}

/// Capacity-bounded LFU cache of pre-folded story centroids.
///
/// Entries live in an index-stable slab: once admitted, an entry keeps
/// its slot index until it is evicted or invalidated. The scoring loop
/// exploits this — phase 2 resolves each story's entry **once** (one
/// hash lookup via [`HotStoryCache::get_mut_indexed`] /
/// [`HotStoryCache::admit`]) and hands the index to the batch-scoring
/// phase, which reads the folds back with [`HotStoryCache::by_index`]
/// at array-index cost instead of re-hashing per story per kernel.
#[derive(Debug, Clone)]
pub struct HotStoryCache {
    capacity: usize,
    index: HashMap<StoryId, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl HotStoryCache {
    /// A cache holding at most `capacity` stories (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        HotStoryCache {
            capacity,
            index: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Read a resident entry.
    pub fn get(&self, story: StoryId) -> Option<&CacheEntry> {
        self.index.get(&story).map(|&i| &self.slots[i as usize].entry)
    }

    /// Read an entry by the slot index returned from
    /// [`HotStoryCache::get_mut_indexed`] or [`HotStoryCache::admit`].
    /// The index stays valid until that story is evicted or invalidated.
    #[inline]
    pub fn by_index(&self, idx: u32) -> &CacheEntry {
        let slot = &self.slots[idx as usize];
        debug_assert!(slot.live, "stale cache index");
        &slot.entry
    }

    /// Mutate a resident entry (lookup-and-refresh path).
    pub fn get_mut(&mut self, story: StoryId) -> Option<&mut CacheEntry> {
        self.get_mut_indexed(story).map(|(_, e)| e)
    }

    /// Like [`HotStoryCache::get_mut`], also yielding the entry's slot
    /// index for later [`HotStoryCache::by_index`] reads.
    pub fn get_mut_indexed(&mut self, story: StoryId) -> Option<(u32, &mut CacheEntry)> {
        let &i = self.index.get(&story)?;
        Some((i, &mut self.slots[i as usize].entry))
    }

    /// Drop a story's entry (story merged away, split, or had a member
    /// removed).
    pub fn invalidate(&mut self, story: StoryId) {
        if let Some(i) = self.index.remove(&story) {
            self.slots[i as usize].live = false;
            self.free.push(i);
        }
    }

    /// Admit `story`, evicting the least-frequently-used unprotected
    /// entry if the cache is full. Returns the slot index and the
    /// (reset) entry to fold into, or `None` when the cache is disabled
    /// or every resident entry is protected.
    ///
    /// `protected` marks stories that must not be evicted — the caller
    /// passes the stories involved in the probe currently being scored,
    /// whose entries it may already have refreshed this round.
    pub fn admit(
        &mut self,
        story: StoryId,
        mut protected: impl FnMut(StoryId) -> bool,
    ) -> Option<(u32, &mut CacheEntry)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.index.get(&story) {
            let entry = &mut self.slots[i as usize].entry;
            entry.reset();
            return Some((i, entry));
        }
        let i = if self.index.len() >= self.capacity {
            // LFU victim, story id as deterministic tie-break; the min
            // is unique so scan order does not matter.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.live && !protected(s.story))
                .min_by_key(|(_, s)| (s.entry.uses, s.story))
                .map(|(i, _)| i as u32)?;
            // Reuse the victim's slot (and allocations) in place.
            self.index.remove(&self.slots[victim as usize].story);
            victim
        } else if let Some(i) = self.free.pop() {
            i
        } else {
            self.slots.push(Slot {
                story,
                live: false,
                entry: CacheEntry::default(),
            });
            (self.slots.len() - 1) as u32
        };
        self.index.insert(story, i);
        let slot = &mut self.slots[i as usize];
        slot.story = story;
        slot.live = true;
        slot.entry.reset();
        Some((i, &mut slot.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StoryId {
        StoryId::new(n)
    }

    #[test]
    fn admit_and_get_round_trip() {
        let mut c = HotStoryCache::new(2);
        let e = c.admit(sid(1), |_| false).unwrap().1;
        e.members.push(SnippetId::new(7));
        e.uses = 3;
        assert_eq!(c.get(sid(1)).unwrap().members, vec![SnippetId::new(7)]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = HotStoryCache::new(0);
        assert!(c.admit(sid(1), |_| false).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn evicts_least_frequently_used() {
        let mut c = HotStoryCache::new(2);
        c.admit(sid(1), |_| false).unwrap().1.uses = 10;
        c.admit(sid(2), |_| false).unwrap().1.uses = 1;
        c.admit(sid(3), |_| false).unwrap();
        assert!(c.get(sid(1)).is_some(), "hot entry survives");
        assert!(c.get(sid(2)).is_none(), "cold entry evicted");
        assert!(c.get(sid(3)).is_some());
    }

    #[test]
    fn tie_break_is_lowest_story_id() {
        let mut c = HotStoryCache::new(2);
        c.admit(sid(5), |_| false).unwrap().1.uses = 1;
        c.admit(sid(2), |_| false).unwrap().1.uses = 1;
        c.admit(sid(9), |_| false).unwrap();
        assert!(c.get(sid(2)).is_none(), "lowest id among equal uses goes");
        assert!(c.get(sid(5)).is_some());
    }

    #[test]
    fn protected_entries_are_never_evicted() {
        let mut c = HotStoryCache::new(1);
        c.admit(sid(1), |_| false).unwrap().1.uses = 0;
        assert!(
            c.admit(sid(2), |s| s == sid(1)).is_none(),
            "full of protected entries ⇒ no admission"
        );
        assert!(c.get(sid(1)).is_some());
    }

    #[test]
    fn invalidate_frees_the_slot() {
        let mut c = HotStoryCache::new(1);
        c.admit(sid(1), |_| false).unwrap().1.uses = 99;
        c.invalidate(sid(1));
        assert!(c.is_empty());
        assert!(c.admit(sid(2), |_| false).is_some());
    }

    #[test]
    fn readmitting_resident_story_resets_it() {
        let mut c = HotStoryCache::new(2);
        let e = c.admit(sid(1), |_| false).unwrap().1;
        e.members.push(SnippetId::new(1));
        e.uses = 5;
        let e = c.admit(sid(1), |_| false).unwrap().1;
        assert!(e.members.is_empty());
        assert_eq!(e.uses, 0);
    }
}
