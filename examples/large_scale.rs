//! Large-scale story detection (paper §4.2.2): a GDELT-like synthetic
//! corpus with the Figure 7 dataset parameters (50 sources, 500
//! entities, Jun–Dec 2014), processed with both identification modes,
//! with the statistics module rendered at the end.
//!
//! The snippet budget is configurable:
//!
//! ```text
//! cargo run --release --example large_scale            # ~8k snippets
//! cargo run --release --example large_scale -- 50000   # bigger run
//! ```

use storypivot::core::config::PivotConfig;
use storypivot::demo::modules::{statistics, StatRow};
use storypivot::eval::run::{run, RunOptions};
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::types::DAY;

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8_000);

    // Figure 7's dataset panel: GDELT, 50 sources, 500 entities,
    // June 1st 2014 – Dec 1st 2014.
    let cfg = GenConfig::default()
        .with_sources(50)
        .with_target_snippets(target);
    eprintln!(
        "generating GDELT-like corpus: {} sources, {} entities, target {} snippets …",
        cfg.sources, cfg.entities, target
    );
    let corpus = CorpusBuilder::new(cfg).build();
    eprintln!(
        "generated {} snippets across {} ground-truth stories\n",
        corpus.len(),
        corpus.truth.story_count()
    );

    let mut rows = Vec::new();
    for (si, config) in [
        ("temporal", PivotConfig::temporal(14 * DAY)),
        ("complete", PivotConfig::complete()),
    ] {
        for (sa, refine) in [("align", false), ("align+ref", true)] {
            eprintln!("running SI={si}, SA={sa} …");
            let r = run(
                &corpus,
                config.clone(),
                RunOptions {
                    align: true,
                    refine,
                    delivery_order: true,
                },
            );
            rows.push(StatRow {
                dataset: "GDELT-like".into(),
                si_method: si.into(),
                sa_method: sa.into(),
                events: r.snippets,
                exec_ms: r.per_event_nanos / 1e6,
                f_measure: r.sa_f1(),
            });
        }
    }

    // Figure 7 — the statistics module.
    println!(
        "{}",
        statistics(
            "GDELT-like (synthetic)",
            corpus.sources.len(),
            corpus.config.entities as usize,
            corpus.len(),
            corpus.config.start,
            corpus.config.end(),
            &rows,
        )
    );

    // Figure 7's two panels, as charts.
    let x = vec![format!("{}", corpus.len())];
    let series_of = |metric: &dyn Fn(&StatRow) -> f64| -> Vec<(String, Vec<f64>)> {
        rows.iter()
            .map(|r| (format!("{}/{}", r.si_method, r.sa_method), vec![metric(r)]))
            .collect()
    };
    println!(
        "{}",
        storypivot::demo::modules::ascii_chart(
            "Execution Time (ms/event)",
            &x,
            &series_of(&|r| r.exec_ms),
        )
    );
    println!(
        "{}",
        storypivot::demo::modules::ascii_chart("F-Measure", &x, &series_of(&|r| r.f_measure))
    );

    // The headline claims, asserted.
    let temporal = rows.iter().find(|r| r.si_method == "temporal" && r.sa_method == "align").unwrap();
    let complete = rows.iter().find(|r| r.si_method == "complete" && r.sa_method == "align").unwrap();
    println!(
        "temporal is {:.1}x faster per event than complete at {} events",
        complete.exec_ms / temporal.exec_ms,
        temporal.events
    );
}
