//! Property tests for the corpus generator: every corpus, under any
//! reasonable parameterization, must satisfy the structural contracts
//! the rest of the system relies on.

use proptest::prelude::*;

use storypivot_gen::{CorpusBuilder, GenConfig};

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (
        any::<u64>(),                 // seed
        2u32..6,                      // sources
        20u32..120,                   // entities
        50u32..300,                   // terms
        2u32..15,                     // stories
        3.0f64..10.0,                 // events per story
        0.0f64..0.5,                  // drift
        0.3f64..1.0,                  // coverage
        0.0f64..0.5,                  // split prob
        0.0f64..0.5,                  // merge prob
    )
        .prop_map(
            |(seed, sources, entities, terms, stories, events, drift, coverage, split, merge)| {
                GenConfig {
                    seed,
                    sources,
                    entities,
                    terms,
                    stories,
                    events_per_story: events,
                    drift,
                    coverage,
                    split_prob: split,
                    merge_prob: merge,
                    ..GenConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn corpora_satisfy_structural_contracts(cfg in arb_config()) {
        let corpus = CorpusBuilder::new(cfg.clone()).build();

        // Delivery order is monotone in delivery time by construction:
        // snippet ids are positional.
        for (i, s) in corpus.snippets.iter().enumerate() {
            prop_assert_eq!(s.id.raw() as usize, i);
            // Every snippet references a registered source.
            prop_assert!(s.source.raw() < cfg.sources);
            // Every snippet is labelled.
            prop_assert!(corpus.truth.label_of(s.id).is_some());
            // Content ids point into the catalogs.
            for e in s.entities().keys() {
                prop_assert!(e.raw() < cfg.entities);
            }
            for t in s.terms().keys() {
                prop_assert!(t.raw() < cfg.terms);
            }
            // Event timestamps stay near the configured period (jitter
            // and lineage can spill slightly past the end).
            prop_assert!(s.timestamp >= cfg.start - cfg.timestamp_jitter);
            prop_assert!(
                s.timestamp <= cfg.end() + cfg.timestamp_jitter,
                "timestamp {} beyond end {}",
                s.timestamp,
                cfg.end()
            );
        }

        // Determinism.
        let again = CorpusBuilder::new(cfg).build();
        prop_assert_eq!(corpus.snippets, again.snippets);
    }

    #[test]
    fn truth_clusters_partition_the_corpus(cfg in arb_config()) {
        let corpus = CorpusBuilder::new(cfg).build();
        let clusters = corpus.truth.clusters();
        let total: usize = clusters.values().map(Vec::len).sum();
        prop_assert_eq!(total, corpus.len());
        let mut seen = std::collections::HashSet::new();
        for members in clusters.values() {
            for &m in members {
                prop_assert!(seen.insert(m), "snippet {m} in two true clusters");
            }
        }
    }
}
