//! Demonstration layer: the paper's interactive modules, reproduced as
//! scriptable text renderers.
//!
//! The SIGMOD'15 demo shows five UI modules (Figures 3–7):
//!
//! 1. **Document selection** — pick articles from real sources;
//! 2. **Story overview** — integrated stories with source/entity/term
//!    digests;
//! 3. **Stories per source** — the identification view within a source;
//! 4. **Snippets per story** — the alignment view across sources;
//! 5. **Statistics** — dataset info plus performance/quality results of
//!    the large-scale experiments.
//!
//! [`mh17`] ships a hand-curated corpus mirroring the paper's running
//! example (the downing of Malaysia Airlines Flight 17 in July 2014,
//! reported by a New York Times-like and a Wall Street Journal-like
//! source, plus the unrelated Google/Yelp story visible in Figure 3),
//! and [`modules`] renders every view as plain text so the whole demo is
//! testable and usable from any terminal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evolution;
pub mod mh17;
pub mod modules;
pub mod names;

pub use evolution::EvolutionDemo;
pub use mh17::Mh17Demo;
pub use names::{CatalogNames, CorpusNames, NameSource, PipelineNames};
