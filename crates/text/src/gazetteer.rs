//! Dictionary-based named entity recognition.
//!
//! The OpenCalais stand-in for entity annotations: a gazetteer maps
//! canonical entities (with aliases) to [`EntityId`]s and recognizes
//! their mentions in tokenized text. Matching happens over *normalized
//! token sequences*, so token boundaries are respected by construction
//! ("Ukraine" never matches inside "Ukrainian") and casing/possessives
//! are already handled by the tokenizer.

use std::collections::HashMap;

use storypivot_types::EntityId;

use crate::ahocorasick::{AhoCorasick, AhoCorasickBuilder};
use crate::tokenize::Token;

/// Separator byte between tokens in the match buffer. Never appears in
/// normalized tokens (it is a control character).
const SEP: u8 = 0x1f;

/// An entity mention found in a token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecognizedEntity {
    /// The recognized entity.
    pub entity: EntityId,
    /// Index of the first covered token.
    pub token_start: usize,
    /// Index one past the last covered token.
    pub token_end: usize,
}

/// Builder for [`Gazetteer`].
#[derive(Debug, Default)]
pub struct GazetteerBuilder {
    /// (normalized alias token sequence, entity) pairs.
    aliases: Vec<(Vec<String>, EntityId)>,
    canonical: HashMap<EntityId, String>,
}

impl GazetteerBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an entity under its canonical name plus aliases.
    ///
    /// Alias strings are tokenized with the same tokenizer used on
    /// documents, so "Malaysia Airlines", "MALAYSIA airlines" and
    /// "malaysia airlines" are the same alias.
    pub fn add_entity(&mut self, id: EntityId, canonical: &str, aliases: &[&str]) -> &mut Self {
        self.canonical.insert(id, canonical.to_string());
        let mut names = vec![canonical];
        names.extend_from_slice(aliases);
        for name in names {
            let toks: Vec<String> = crate::tokenize::tokenize(name)
                .into_iter()
                .map(|t| t.norm)
                .collect();
            if !toks.is_empty() {
                self.aliases.push((toks, id));
            }
        }
        self
    }

    /// Compile the gazetteer.
    pub fn build(&self) -> Gazetteer {
        let mut ac = AhoCorasickBuilder::new();
        let mut pattern_entities = Vec::with_capacity(self.aliases.len());
        for (toks, id) in &self.aliases {
            let mut pat = Vec::new();
            for (i, t) in toks.iter().enumerate() {
                if i > 0 {
                    pat.push(SEP);
                }
                pat.extend_from_slice(t.as_bytes());
            }
            // Anchor with separators so aliases match whole tokens only.
            let mut anchored = vec![SEP];
            anchored.extend_from_slice(&pat);
            anchored.push(SEP);
            ac.add_pattern(&anchored);
            pattern_entities.push(*id);
        }
        Gazetteer {
            automaton: ac.build(),
            pattern_entities,
            canonical: self.canonical.clone(),
        }
    }
}

/// Compiled entity recognizer.
///
/// ```
/// use storypivot_text::{GazetteerBuilder, tokenize};
/// use storypivot_types::EntityId;
/// let mut b = GazetteerBuilder::new();
/// b.add_entity(EntityId::new(0), "Ukraine", &["UKR"]);
/// b.add_entity(EntityId::new(1), "United Nations", &["UN", "U.N."]);
/// let g = b.build();
/// let toks = tokenize("Ukraine asked the U.N. for help");
/// let found = g.recognize(&toks);
/// assert_eq!(found.len(), 2);
/// assert_eq!(found[0].entity, EntityId::new(0));
/// assert_eq!(found[1].entity, EntityId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct Gazetteer {
    automaton: AhoCorasick,
    pattern_entities: Vec<EntityId>,
    canonical: HashMap<EntityId, String>,
}

impl Gazetteer {
    /// Number of alias patterns compiled in.
    pub fn alias_count(&self) -> usize {
        self.pattern_entities.len()
    }

    /// Canonical display name of an entity, if registered.
    pub fn canonical_name(&self, id: EntityId) -> Option<&str> {
        self.canonical.get(&id).map(String::as_str)
    }

    /// All registered entity ids (unordered).
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.canonical.keys().copied()
    }

    /// Recognize entity mentions in a token stream (leftmost-longest,
    /// non-overlapping).
    pub fn recognize(&self, tokens: &[Token]) -> Vec<RecognizedEntity> {
        if tokens.is_empty() || self.pattern_entities.is_empty() {
            return Vec::new();
        }
        // Build the separator-delimited buffer and remember where each
        // token starts inside it.
        let mut buf = Vec::with_capacity(tokens.len() * 8);
        let mut token_byte_start = Vec::with_capacity(tokens.len());
        buf.push(SEP);
        for t in tokens {
            token_byte_start.push(buf.len());
            buf.extend_from_slice(t.norm.as_bytes());
            buf.push(SEP);
        }

        // Each anchored pattern includes the separators on both sides, so
        // adjacent mentions *share* a separator byte. Leftmost-longest
        // selection therefore runs on the inner spans (separators
        // stripped), where adjacency is legal but overlap is not.
        let mut best_at: HashMap<usize, (usize, usize)> = HashMap::new(); // inner_start -> (inner_end, pattern)
        for m in self.automaton.find_all(&buf) {
            let (inner_start, inner_end) = (m.start + 1, m.end - 1);
            best_at
                .entry(inner_start)
                .and_modify(|cur| {
                    if inner_end > cur.0 {
                        *cur = (inner_end, m.pattern);
                    }
                })
                .or_insert((inner_end, m.pattern));
        }
        let mut starts: Vec<usize> = best_at.keys().copied().collect();
        starts.sort_unstable();

        let mut out = Vec::new();
        let mut cursor = 0usize;
        for s in starts {
            let (e, pattern) = best_at[&s];
            if s < cursor {
                continue;
            }
            cursor = e;
            let token_start = token_byte_start
                .binary_search(&s)
                .expect("match is token-aligned");
            let token_end = match token_byte_start.binary_search(&e) {
                Ok(i) => i,  // next token starts exactly at the end
                Err(i) => i, // end falls at the last covered token's tail
            };
            out.push(RecognizedEntity {
                entity: self.pattern_entities[pattern],
                token_start,
                token_end,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn sample() -> Gazetteer {
        let mut b = GazetteerBuilder::new();
        b.add_entity(EntityId::new(0), "Ukraine", &["UKR"]);
        b.add_entity(EntityId::new(1), "Russia", &["RUS", "Russian Federation"]);
        b.add_entity(EntityId::new(2), "Malaysia Airlines", &["MAL", "Malaysia Airlines Flight 17", "MH17"]);
        b.add_entity(EntityId::new(3), "United Nations", &["UN", "U.N."]);
        b.build()
    }

    #[test]
    fn single_token_entities() {
        let g = sample();
        let toks = tokenize("Ukraine and Russia traded accusations");
        let found = g.recognize(&toks);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].entity, EntityId::new(0));
        assert_eq!((found[0].token_start, found[0].token_end), (0, 1));
        assert_eq!(found[1].entity, EntityId::new(1));
        assert_eq!((found[1].token_start, found[1].token_end), (2, 3));
    }

    #[test]
    fn multi_token_alias_prefers_longest() {
        let g = sample();
        let toks = tokenize("Malaysia Airlines Flight 17 was shot down");
        let found = g.recognize(&toks);
        // The 4-token alias wins over the 2-token canonical name.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].entity, EntityId::new(2));
        assert_eq!((found[0].token_start, found[0].token_end), (0, 4));
    }

    #[test]
    fn no_substring_matches_inside_tokens() {
        let g = sample();
        // "Ukrainian" must not trigger "Ukraine"; "UNESCO" must not
        // trigger "UN".
        let toks = tokenize("Ukrainian UNESCO delegates");
        assert!(g.recognize(&toks).is_empty());
    }

    #[test]
    fn dotted_abbreviation_matches() {
        let g = sample();
        let toks = tokenize("Ukraine asked the U.N. aviation authority");
        let found = g.recognize(&toks);
        assert_eq!(found.len(), 2);
        assert_eq!(found[1].entity, EntityId::new(3));
    }

    #[test]
    fn case_insensitive_matching() {
        let g = sample();
        let toks = tokenize("UKRAINE ukraine UkRaInE");
        assert_eq!(g.recognize(&toks).len(), 3);
    }

    #[test]
    fn mentions_at_text_boundaries() {
        let g = sample();
        let toks = tokenize("Russia");
        let found = g.recognize(&toks);
        assert_eq!(found.len(), 1);
        let toks = tokenize("sanctions against Russia");
        let found = g.recognize(&toks);
        assert_eq!(found.len(), 1);
        assert_eq!((found[0].token_start, found[0].token_end), (2, 3));
    }

    #[test]
    fn empty_inputs() {
        let g = sample();
        assert!(g.recognize(&[]).is_empty());
        let empty = GazetteerBuilder::new().build();
        assert!(empty.recognize(&tokenize("Ukraine")).is_empty());
    }

    #[test]
    fn canonical_names_resolve() {
        let g = sample();
        assert_eq!(g.canonical_name(EntityId::new(2)), Some("Malaysia Airlines"));
        assert_eq!(g.canonical_name(EntityId::new(99)), None);
        assert!(g.alias_count() >= 9);
    }

    #[test]
    fn repeated_mentions_all_found() {
        let g = sample();
        let toks = tokenize("Ukraine, Ukraine, and again Ukraine");
        assert_eq!(g.recognize(&toks).len(), 3);
    }
}
