//! Configuration for every StoryPivot phase.

use storypivot_types::{Error, Result, DAY};

use crate::sim::SimWeights;

/// Story identification execution mode (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchMode {
    /// Compare an incoming snippet against **all** snippets of all
    /// stories in its source (Figure 2a). The paper's baseline: per-event
    /// cost grows with corpus size and evolving stories get "overfit".
    Complete,
    /// Compare only against snippets whose timestamp lies in the sliding
    /// window `[t-ω, t+ω]` (Figure 2b). `omega` is in seconds.
    Temporal {
        /// Window half-width ω in seconds.
        omega: i64,
    },
}

impl MatchMode {
    /// The window half-width, if temporal.
    pub fn omega(&self) -> Option<i64> {
        match *self {
            MatchMode::Temporal { omega } => Some(omega),
            MatchMode::Complete => None,
        }
    }

    /// Short display name used by the statistics module.
    pub fn name(&self) -> &'static str {
        match self {
            MatchMode::Complete => "complete",
            MatchMode::Temporal { .. } => "temporal",
        }
    }
}

/// Configuration of the story identification phase (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifyConfig {
    /// Execution mode: temporal sliding window or complete matching.
    pub mode: MatchMode,
    /// Minimum snippet–story similarity to join an existing story;
    /// below it a new story is opened.
    pub match_threshold: f64,
    /// Similarity component weights shared by all phases.
    pub weights: SimWeights,
    /// When the incoming snippet matches *two* stories above this
    /// threshold, the stories are merged (incremental merge evidence).
    pub merge_threshold: f64,
    /// Minimum pairwise similarity for two member snippets to stay
    /// connected during a split check; stories falling apart into
    /// disconnected components are split.
    pub split_threshold: f64,
    /// Run the merge/split maintenance pass every this many ingested
    /// snippets per source (0 disables periodic maintenance).
    pub maintenance_every: usize,
    /// Blend between the two snippet–story scoring components:
    /// `score = pair_blend · best-pair + (1 − pair_blend) · windowed
    /// centroid`. Pure single-link (`1.0`) chains evolving stories
    /// aggressively but over-merges at scale; pure centroid (`0.0`)
    /// resists chaining but fragments drifting stories. The E10
    /// ablation measures the trade-off.
    pub pair_blend: f64,
    /// Capacity of the per-source hot-story cache: pre-folded windowed
    /// centroids for the most frequently probed stories (Zipf-skewed
    /// traffic concentrates comparisons on a few hot stories). `0`
    /// disables the cache. Partitions are identical with the cache on or
    /// off; only the ns/event moves.
    pub hot_cache_capacity: usize,
}

impl Default for IdentifyConfig {
    fn default() -> Self {
        IdentifyConfig {
            mode: MatchMode::Temporal { omega: 14 * DAY },
            match_threshold: 0.40,
            weights: SimWeights::default(),
            merge_threshold: 0.60,
            split_threshold: 0.18,
            maintenance_every: 64,
            pair_blend: 0.5,
            hot_cache_capacity: 512,
        }
    }
}

/// Configuration of the story alignment phase (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct AlignConfig {
    /// Minimum combined (content × evolution) story–story similarity to
    /// align two stories across sources.
    pub align_threshold: f64,
    /// Temporal bucket width (seconds) of story evolution signatures.
    pub bucket_width: i64,
    /// Maximum reporting lag between sources, in buckets, tolerated by
    /// the evolution comparison (§2.3: alignment allows "more tolerance
    /// in the temporal alignment of stories" than identification).
    pub max_lag_buckets: i64,
    /// Minimum snippet–snippet similarity for a cross-source
    /// *counterpart*: snippets with a counterpart are `Aligning`,
    /// without one `Enriching`.
    pub counterpart_threshold: f64,
    /// Counterparts must also share description terms (cosine ≥ this
    /// floor). Source-exclusive special reports share a story's entities
    /// but not its day-to-day description, so entity overlap alone must
    /// not make a snippet `Aligning`.
    pub counterpart_term_floor: f64,
    /// Maximum time distance (seconds) between counterpart snippets.
    pub counterpart_lag: i64,
    /// Compare stories via MinHash sketches (`true`, §2.4) or via exact
    /// centroid similarity (`false`). The E4 ablation toggles this.
    pub use_sketches: bool,
    /// Minimum number of shared indexed entities for a story pair to be
    /// scored at all (candidate pruning).
    pub min_shared_entities: usize,
}

impl Default for AlignConfig {
    fn default() -> Self {
        AlignConfig {
            align_threshold: 0.30,
            bucket_width: DAY,
            max_lag_buckets: 3,
            counterpart_threshold: 0.35,
            counterpart_term_floor: 0.15,
            counterpart_lag: 3 * DAY,
            use_sketches: false,
            min_shared_entities: 1,
        }
    }
}

/// Configuration of the sketch layer (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// MinHash signature length `k` (estimation error ≈ `1/√k`).
    pub minhash_k: usize,
    /// Seed of the shared hash family; all sketches in one pivot must
    /// agree on it so they can be compared and merged.
    pub seed: u64,
    /// Capacity of the per-story heavy-hitter trackers driving the demo
    /// digests (`{crash,3}; {plane,3}; …`).
    pub topk_capacity: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            minhash_k: 128,
            seed: 0x5357_4f52_5950_5654, // "STORYPVT"
            topk_capacity: 64,
        }
    }
}

/// Configuration of the refinement phase (§2.3, Figure 1d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// A snippet moves to a competing global story when its cohesion
    /// there exceeds cohesion in its current story by this margin
    /// (hysteresis against oscillation).
    pub move_margin: f64,
    /// Absolute cohesion floor: a snippet never moves to a story where
    /// its cohesion is below this, no matter how weak its current story
    /// is. Prevents poorly-connected singletons (e.g. a story only one
    /// source covers) from being absorbed by vaguely related stories.
    pub min_target_cohesion: f64,
    /// Maximum refinement sweeps per [`crate::pivot::StoryPivot::refine`] call.
    pub max_rounds: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            move_margin: 0.10,
            min_target_cohesion: 0.35,
            max_rounds: 3,
        }
    }
}

/// Top-level configuration for a [`crate::pivot::StoryPivot`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PivotConfig {
    /// Identification phase settings.
    pub identify: IdentifyConfig,
    /// Alignment phase settings.
    pub align: AlignConfig,
    /// Refinement phase settings.
    pub refine: RefineConfig,
    /// Sketch layer settings.
    pub sketch: SketchConfig,
}

impl PivotConfig {
    /// A configuration using complete (baseline) identification.
    pub fn complete() -> Self {
        PivotConfig {
            identify: IdentifyConfig {
                mode: MatchMode::Complete,
                ..IdentifyConfig::default()
            },
            ..PivotConfig::default()
        }
    }

    /// A configuration using temporal identification with window ω
    /// (seconds).
    pub fn temporal(omega: i64) -> Self {
        PivotConfig {
            identify: IdentifyConfig {
                mode: MatchMode::Temporal { omega },
                ..IdentifyConfig::default()
            },
            ..PivotConfig::default()
        }
    }

    /// Validate every field's domain; call once before building a pivot.
    pub fn validate(&self) -> Result<()> {
        let unit = |v: f64, name: &str| -> Result<()> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(Error::InvalidConfig(format!("{name} must lie in [0,1], got {v}")))
            }
        };
        unit(self.identify.match_threshold, "identify.match_threshold")?;
        unit(self.identify.merge_threshold, "identify.merge_threshold")?;
        unit(self.identify.split_threshold, "identify.split_threshold")?;
        unit(self.identify.pair_blend, "identify.pair_blend")?;
        unit(self.align.align_threshold, "align.align_threshold")?;
        unit(self.align.counterpart_threshold, "align.counterpart_threshold")?;
        unit(self.align.counterpart_term_floor, "align.counterpart_term_floor")?;
        unit(self.refine.move_margin, "refine.move_margin")?;
        unit(self.refine.min_target_cohesion, "refine.min_target_cohesion")?;
        if let MatchMode::Temporal { omega } = self.identify.mode {
            if omega <= 0 {
                return Err(Error::InvalidConfig(format!(
                    "identify window omega must be positive, got {omega}"
                )));
            }
        }
        if self.align.bucket_width <= 0 {
            return Err(Error::InvalidConfig("align.bucket_width must be positive".into()));
        }
        if self.align.max_lag_buckets < 0 {
            return Err(Error::InvalidConfig("align.max_lag_buckets must be >= 0".into()));
        }
        if self.align.counterpart_lag < 0 {
            return Err(Error::InvalidConfig("align.counterpart_lag must be >= 0".into()));
        }
        if self.sketch.minhash_k == 0 {
            return Err(Error::InvalidConfig("sketch.minhash_k must be positive".into()));
        }
        if self.sketch.topk_capacity == 0 {
            return Err(Error::InvalidConfig("sketch.topk_capacity must be positive".into()));
        }
        self.identify.weights.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PivotConfig::default().validate().unwrap();
        PivotConfig::complete().validate().unwrap();
        PivotConfig::temporal(7 * DAY).validate().unwrap();
    }

    #[test]
    fn mode_accessors() {
        assert_eq!(MatchMode::Complete.omega(), None);
        assert_eq!(MatchMode::Temporal { omega: 5 }.omega(), Some(5));
        assert_eq!(MatchMode::Complete.name(), "complete");
        assert_eq!(MatchMode::Temporal { omega: 5 }.name(), "temporal");
    }

    #[test]
    fn out_of_range_thresholds_rejected() {
        let mut c = PivotConfig::default();
        c.identify.match_threshold = 1.5;
        assert!(c.validate().is_err());

        let mut c = PivotConfig::default();
        c.align.align_threshold = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_positive_window_rejected() {
        let c = PivotConfig::temporal(0);
        assert!(c.validate().is_err());
        let c = PivotConfig::temporal(-DAY);
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_sketch_k_rejected() {
        let mut c = PivotConfig::default();
        c.sketch.minhash_k = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_bucket_width_rejected() {
        let mut c = PivotConfig::default();
        c.align.bucket_width = 0;
        assert!(c.validate().is_err());
    }
}
