//! The load generator: replay a [`storypivot_gen`] corpus against a
//! running server and measure throughput and latency.
//!
//! Snippets are partitioned across M connections *by source* (source id
//! mod M), so each source's stream stays on one connection and arrives
//! at its shard in delivery order — the same ordering guarantee the
//! in-process pipeline has. Each connection paces itself toward the
//! target aggregate rate and absorbs BUSY replies with the client's
//! jittered exponential backoff (seeded per snippet, honoring the
//! server's retry-after hint).

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use storypivot_gen::Corpus;
use storypivot_substrate::timing::Histogram;
use storypivot_types::{Error, Result, Snippet};

use crate::client::{BackoffPolicy, Client};

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent connections (sources are split across them).
    pub connections: usize,
    /// Target aggregate ingest rate in events/second (0 = as fast as
    /// possible).
    pub rate: u64,
    /// How many BUSY replies to absorb per snippet before giving up.
    pub max_retries: u32,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            connections: 4,
            rate: 0,
            max_retries: 100,
        }
    }
}

/// What a replay measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Snippets successfully ingested.
    pub events: u64,
    /// BUSY replies absorbed (each one cost a retry round-trip).
    pub busy_retries: u64,
    /// Wall-clock time of the replay.
    pub wall: Duration,
    /// Per-request round-trip latency (nanoseconds).
    pub latency: Histogram,
}

impl LoadReport {
    /// Achieved throughput in events/second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.wall.as_secs_f64()
    }

    /// Median round-trip latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.latency.percentile(0.50) as f64 / 1e3
    }

    /// 95th-percentile round-trip latency in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.latency.percentile(0.95) as f64 / 1e3
    }

    /// 99th-percentile round-trip latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.percentile(0.99) as f64 / 1e3
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} events in {:.2}s → {:.0} ev/s; rtt p50/p95/p99 {:.1}/{:.1}/{:.1} µs; {} busy retries",
            self.events,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.p50_us(),
            self.p95_us(),
            self.p99_us(),
            self.busy_retries,
        )
    }

    /// A JSON object (same shape as the bench harness artifacts).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"events\": {},\n",
                "  \"busy_retries\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"throughput_ev_per_s\": {:.2},\n",
                "  \"rtt_p50_us\": {:.2},\n",
                "  \"rtt_p95_us\": {:.2},\n",
                "  \"rtt_p99_us\": {:.2}\n",
                "}}"
            ),
            self.events,
            self.busy_retries,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.p50_us(),
            self.p95_us(),
            self.p99_us(),
        )
    }
}

/// Register the corpus's sources (connection 0) and replay its snippet
/// stream over `connections` paced connections.
///
/// The server allocates source ids sequentially from zero against a
/// fresh engine, which matches the corpus's own numbering; a mismatch
/// (server not fresh) is an error.
pub fn replay<A: ToSocketAddrs>(addr: A, corpus: &Corpus, opts: &LoadOptions) -> Result<LoadReport> {
    if opts.connections == 0 {
        return Err(Error::InvalidConfig("loadgen: connections must be >= 1".into()));
    }
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::InvalidConfig("loadgen: address resolved to nothing".into()))?;

    let mut setup = Client::connect(addr)?;
    for source in &corpus.sources {
        let got = setup.add_source(&source.name, source.kind, source.typical_lag)?;
        if got != source.id {
            return Err(Error::InvalidConfig(format!(
                "server allocated source id {got} where the corpus expects {} — \
                 is the server fresh?",
                source.id
            )));
        }
    }

    // Partition by source, preserving delivery order within each lane.
    let lanes = opts.connections;
    let mut per_lane: Vec<Vec<Snippet>> = vec![Vec::new(); lanes];
    for s in &corpus.snippets {
        per_lane[s.source.raw() as usize % lanes].push(s.clone());
    }
    let per_lane_rate = opts.rate as f64 / lanes as f64;

    let start = Instant::now();
    let mut handles = Vec::with_capacity(lanes);
    // BUSY handling: jittered exponential backoff honoring the
    // server's retry-after hint, with a typed error on exhaustion.
    let backoff = BackoffPolicy {
        max_attempts: opts.max_retries.saturating_add(1),
        ..BackoffPolicy::default()
    };
    for lane in per_lane {
        handles.push(std::thread::spawn(move || -> Result<(u64, u64, Histogram)> {
            let mut client = Client::connect(addr)?;
            let mut hist = Histogram::new();
            let mut events = 0u64;
            let mut busy = 0u64;
            let lane_start = Instant::now();
            for (i, snippet) in lane.iter().enumerate() {
                if per_lane_rate > 0.0 {
                    // Pace against the schedule, not the previous send:
                    // event i is due at i / rate seconds.
                    let due = Duration::from_secs_f64(i as f64 / per_lane_rate);
                    let elapsed = lane_start.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                }
                let t = Instant::now();
                let (_, retries) = client.ingest_backoff(snippet, backoff)?;
                busy += retries as u64;
                hist.record(t.elapsed().as_nanos() as u64);
                events += 1;
            }
            Ok((events, busy, hist))
        }));
    }

    let mut report = LoadReport {
        events: 0,
        busy_retries: 0,
        wall: Duration::ZERO,
        latency: Histogram::new(),
    };
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((events, busy, hist))) => {
                report.events += events;
                report.busy_retries += busy;
                report.latency.merge(&hist);
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some(Error::Io("loadgen connection thread panicked".into())),
        }
    }
    report.wall = start.elapsed();
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_and_summary_are_well_formed() {
        let mut latency = Histogram::new();
        for v in [1_000u64, 2_000, 50_000] {
            latency.record(v);
        }
        let r = LoadReport {
            events: 3,
            busy_retries: 1,
            wall: Duration::from_millis(30),
            latency,
        };
        assert!(r.throughput() > 99.0 && r.throughput() < 101.0);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"events\": 3"));
        assert!(json.contains("\"busy_retries\": 1"));
        assert!(r.summary().contains("3 events"));
    }
}
