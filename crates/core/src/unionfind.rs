//! Disjoint-set forest (union–find) with path compression and union by
//! rank.
//!
//! Story alignment accepts pairwise story matches and must group them
//! into integrated global stories; that grouping is exactly the
//! connected components of the acceptance graph, which union–find
//! computes online in near-constant amortized time.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress the path.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merge the sets of `a` and `b`; returns whether they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = (ra as u32, rb as u32);
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group all elements by component; each group is sorted ascending
    /// and groups are ordered by their smallest element.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.parent.len() {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(3), 3);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn groups_are_sorted_and_complete() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 1);
        uf.union(5, 3);
        let groups = uf.groups();
        assert_eq!(groups, vec![vec![0], vec![1, 4], vec![2], vec![3, 5]]);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn transitive_chains_collapse() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.groups(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        // After find, every node points (almost) directly at the root.
        for i in 0..8 {
            let r = uf.find(i);
            assert_eq!(r, root);
        }
    }
}
