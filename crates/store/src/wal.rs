//! Write-ahead log for the event store.
//!
//! Snapshots ([`crate::snapshot`]) capture a full store; between
//! snapshots, a long-running ingester needs *incremental* durability —
//! GDELT-style feeds arrive continuously (paper §1) and losing a day of
//! extractions to a crash is not acceptable. The WAL appends one record
//! per mutation and replays them on restart:
//!
//! ```text
//! record   := kind u8 | len u32 | payload | crc u32
//! kind     := 1 insert-snippet | 2 remove-snippet | 3 register-source
//!           | 4 remove-source | 5 remove-document
//! crc      := CRC-32 (IEEE) over kind, len, payload
//! ```
//!
//! A torn tail (crash mid-write) is detected by length/CRC and ignored;
//! everything before it replays. Typical deployment: snapshot
//! periodically, truncate the log, replay `snapshot + log` on startup.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use storypivot_substrate::wal::crc32;
use storypivot_types::{DocId, Error, Result, Snippet, SnippetId, SourceId};

use crate::codec::{decode_snippet, decode_source, encode_snippet, encode_source};
use crate::event_store::EventStore;

const KIND_INSERT: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_ADD_SOURCE: u8 = 3;
const KIND_REMOVE_SOURCE: u8 = 4;
const KIND_REMOVE_DOC: u8 = 5;

/// An append-only mutation log.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
}

impl Wal {
    /// Open (or create) a log for appending.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            writer: BufWriter::new(file),
        })
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(payload.len() + 9);
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        self.writer.write_all(&frame)?;
        Ok(())
    }

    /// Log a snippet insertion.
    pub fn log_insert(&mut self, snippet: &Snippet) -> Result<()> {
        let mut payload = Vec::new();
        encode_snippet(&mut payload, snippet);
        self.append(KIND_INSERT, &payload)
    }

    /// Log a snippet removal.
    pub fn log_remove(&mut self, id: SnippetId) -> Result<()> {
        self.append(KIND_REMOVE, &id.raw().to_le_bytes())
    }

    /// Log a source registration.
    pub fn log_add_source(&mut self, source: &storypivot_types::Source) -> Result<()> {
        let mut payload = Vec::new();
        encode_source(&mut payload, source);
        self.append(KIND_ADD_SOURCE, &payload)
    }

    /// Log a source removal.
    pub fn log_remove_source(&mut self, id: SourceId) -> Result<()> {
        self.append(KIND_REMOVE_SOURCE, &id.raw().to_le_bytes())
    }

    /// Log a document removal.
    pub fn log_remove_document(&mut self, id: DocId) -> Result<()> {
        self.append(KIND_REMOVE_DOC, &id.raw().to_le_bytes())
    }

    /// Flush buffered records and fsync to disk.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }
}

/// Result of a replay: the store plus what was skipped.
#[derive(Debug)]
pub struct ReplayReport {
    /// Records applied successfully.
    pub applied: usize,
    /// Whether a torn tail was detected and discarded.
    pub torn_tail: bool,
}

/// Replay a log into `store`. Stops cleanly at a torn tail (truncated or
/// CRC-corrupt final record); corruption *before* the tail is an error.
pub fn replay(path: &Path, store: &mut EventStore) -> Result<ReplayReport> {
    let mut bytes = Vec::new();
    File::open(path)
        .map_err(|e| Error::Io(format!("{}: {e}", path.display())))?
        .read_to_end(&mut bytes)?;

    let mut offset = 0usize;
    let mut applied = 0usize;
    let mut torn_tail = false;
    while offset < bytes.len() {
        // Frame header: kind (1) + len (4).
        if offset + 5 > bytes.len() {
            torn_tail = true;
            break;
        }
        let kind = bytes[offset];
        let len =
            u32::from_le_bytes(bytes[offset + 1..offset + 5].try_into().expect("4 bytes")) as usize;
        let frame_end = offset + 5 + len;
        if frame_end + 4 > bytes.len() {
            torn_tail = true;
            break;
        }
        let stored_crc =
            u32::from_le_bytes(bytes[frame_end..frame_end + 4].try_into().expect("4 bytes"));
        if crc32(&bytes[offset..frame_end]) != stored_crc {
            // A bad CRC on the final record is a torn tail; anywhere
            // else it is corruption.
            if frame_end + 4 == bytes.len() {
                torn_tail = true;
                break;
            }
            return Err(Error::Codec(format!(
                "WAL corruption at offset {offset} (bad CRC mid-log)"
            )));
        }
        let mut payload = &bytes[offset + 5..frame_end];
        match kind {
            KIND_INSERT => {
                store.insert(decode_snippet(&mut payload)?)?;
            }
            KIND_REMOVE => {
                if payload.len() != 4 {
                    return Err(Error::Codec("bad remove record".into()));
                }
                store.remove(SnippetId::new(u32::from_le_bytes(payload.try_into().unwrap())))?;
            }
            KIND_ADD_SOURCE => {
                store.register_source(decode_source(&mut payload)?)?;
            }
            KIND_REMOVE_SOURCE => {
                if payload.len() != 4 {
                    return Err(Error::Codec("bad remove-source record".into()));
                }
                store.remove_source(SourceId::new(u32::from_le_bytes(payload.try_into().unwrap())))?;
            }
            KIND_REMOVE_DOC => {
                if payload.len() != 4 {
                    return Err(Error::Codec("bad remove-document record".into()));
                }
                store.remove_document(DocId::new(u32::from_le_bytes(payload.try_into().unwrap())))?;
            }
            other => {
                return Err(Error::Codec(format!("unknown WAL record kind {other}")));
            }
        }
        applied += 1;
        offset = frame_end + 4;
    }
    Ok(ReplayReport { applied, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, Source, SourceKind, Timestamp};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storypivot-wal-{name}-{}", std::process::id()));
        p
    }

    fn snip(id: u32, t: i64) -> Snippet {
        Snippet::builder(SnippetId::new(id), SourceId::new(0), Timestamp::from_secs(t))
            .entity(EntityId::new(id % 3), 1.0)
            .headline(format!("headline {id}"))
            .build()
    }

    #[test]
    fn log_and_replay_round_trips() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_add_source(&Source::new(SourceId::new(0), "s0", SourceKind::Wire))
                .unwrap();
            for i in 0..10u32 {
                wal.log_insert(&snip(i, i as i64 * 100)).unwrap();
            }
            wal.log_remove(SnippetId::new(3)).unwrap();
            wal.sync().unwrap();
        }
        let mut store = EventStore::new();
        let report = replay(&path, &mut store).unwrap();
        assert_eq!(report.applied, 12);
        assert!(!report.torn_tail);
        assert_eq!(store.len(), 9);
        assert!(!store.contains(SnippetId::new(3)));
        assert_eq!(store.get(SnippetId::new(5)).unwrap().content.headline, "headline 5");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_add_source(&Source::new(SourceId::new(0), "s0", SourceKind::Wire))
                .unwrap();
            wal.log_insert(&snip(0, 1)).unwrap();
            wal.log_insert(&snip(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-write: chop bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let mut store = EventStore::new();
        let report = replay(&path, &mut store).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.applied, 2, "everything before the tear replays");
        assert_eq!(store.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_add_source(&Source::new(SourceId::new(0), "s0", SourceKind::Wire))
                .unwrap();
            wal.log_insert(&snip(0, 1)).unwrap();
            wal.log_insert(&snip(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the *first* record.
        bytes[7] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = EventStore::new();
        assert!(matches!(replay(&path, &mut store), Err(Error::Codec(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_appends_rather_than_truncates() {
        let path = tmp("append");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_add_source(&Source::new(SourceId::new(0), "s0", SourceKind::Wire))
                .unwrap();
            wal.log_insert(&snip(0, 1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_insert(&snip(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        let mut store = EventStore::new();
        let report = replay(&path, &mut store).unwrap();
        assert_eq!(report.applied, 3);
        assert_eq!(store.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn document_and_source_removals_replay() {
        let path = tmp("removals");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.log_add_source(&Source::new(SourceId::new(0), "s0", SourceKind::Wire)).unwrap();
            wal.log_add_source(&Source::new(SourceId::new(1), "s1", SourceKind::Blog)).unwrap();
            wal.log_insert(&snip(0, 1)).unwrap(); // doc 0
            let mut other = snip(1, 2);
            other.source = SourceId::new(1);
            wal.log_insert(&other).unwrap();
            wal.log_remove_document(DocId::new(0)).unwrap();
            wal.log_remove_source(SourceId::new(1)).unwrap();
            wal.sync().unwrap();
        }
        let mut store = EventStore::new();
        let report = replay(&path, &mut store).unwrap();
        assert_eq!(report.applied, 6);
        assert!(store.is_empty());
        assert_eq!(store.source_count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn missing_file_errors() {
        let mut store = EventStore::new();
        assert!(replay(Path::new("/nonexistent/wal.log"), &mut store).is_err());
    }
}
