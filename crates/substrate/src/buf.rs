//! Little-endian byte reading and writing.
//!
//! The store's binary codec (snapshots, WAL) works against the
//! [`Buf`]/[`BufMut`] traits: decoding consumes a shrinking `&[u8]`,
//! encoding appends to a growable [`ByteBuf`]. The trait surface is the
//! slice of the `bytes` crate the codec actually used — cursor-style
//! reads with explicit `remaining()` so every decode path can
//! bounds-check before touching the bytes.

/// The standard growable output buffer ([`Vec<u8>`]).
pub type ByteBuf = Vec<u8>;

/// Cursor-style reading from a byte source. Implemented for `&[u8]`,
/// which advances in place — `&mut &[u8]` is the canonical decoder
/// argument.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain; callers are
    /// expected to check [`Buf::remaining`] first.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Appending writes to a byte sink. Implemented for [`Vec<u8>`].
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut buf = ByteBuf::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_i64_le(-42);
        buf.put_f32_le(2.5);
        buf.put_slice(b"tail");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f32_le(), 2.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = ByteBuf::new();
        buf.put_u32_le(0x0102_0304);
        assert_eq!(buf, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn remaining_tracks_the_cursor() {
        let data = [1u8, 2, 3];
        let mut r: &[u8] = &data;
        assert_eq!(r.remaining(), 3);
        r.get_u8();
        assert_eq!(r.remaining(), 2);
        let mut rest = [0u8; 2];
        r.copy_to_slice(&mut rest);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn overread_panics_with_context() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
