//! Text annotation: entities, keywords, event type.
//!
//! The OpenCalais stand-in. Given raw text, the annotator produces the
//! same kinds of annotations the paper's pipeline consumed: recognized
//! entities (via gazetteer NER), salient description terms (stemmed,
//! stopword-filtered), and a coarse event type (keyword voting rules).

use std::collections::HashMap;

use storypivot_text::{is_stopword, porter_stem, tokenize, Gazetteer, Interner};
use storypivot_types::{EntityId, EventType, TermId};

/// Keyword → event-type voting rules (keywords are Porter stems).
const EVENT_RULES: &[(&str, EventType)] = &[
    ("crash", EventType::Accident),
    ("collid", EventType::Accident),
    ("accid", EventType::Accident),
    ("explod", EventType::Accident),
    ("derail", EventType::Accident),
    ("attack", EventType::Conflict),
    ("war", EventType::Conflict),
    ("troop", EventType::Conflict),
    ("militari", EventType::Conflict),
    ("clash", EventType::Conflict),
    ("fight", EventType::Conflict),
    ("missil", EventType::Conflict),
    ("shell", EventType::Conflict),
    ("protest", EventType::Protest),
    ("demonstr", EventType::Protest),
    ("ralli", EventType::Protest),
    ("march", EventType::Protest),
    ("unrest", EventType::Protest),
    ("sanction", EventType::Diplomacy),
    ("negoti", EventType::Diplomacy),
    ("treati", EventType::Diplomacy),
    ("ambassador", EventType::Diplomacy),
    ("diplomat", EventType::Diplomacy),
    ("summit", EventType::Diplomacy),
    ("market", EventType::Economy),
    ("trade", EventType::Economy),
    ("econom", EventType::Economy),
    ("bank", EventType::Economy),
    ("stock", EventType::Economy),
    ("export", EventType::Economy),
    ("elect", EventType::Politics),
    ("vote", EventType::Politics),
    ("parliament", EventType::Politics),
    ("legisl", EventType::Politics),
    ("presid", EventType::Politics),
    ("earthquak", EventType::Disaster),
    ("flood", EventType::Disaster),
    ("hurrican", EventType::Disaster),
    ("wildfir", EventType::Disaster),
    ("arrest", EventType::Crime),
    ("court", EventType::Crime),
    ("trial", EventType::Crime),
    ("murder", EventType::Crime),
    ("diseas", EventType::Health),
    ("outbreak", EventType::Health),
    ("vaccin", EventType::Health),
    ("hospit", EventType::Health),
    ("virus", EventType::Health),
    ("tournament", EventType::Sports),
    ("championship", EventType::Sports),
    ("goal", EventType::Sports),
    ("leagu", EventType::Sports),
    ("research", EventType::Science),
    ("scienc", EventType::Science),
    ("satellit", EventType::Science),
    ("launch", EventType::Science),
];

/// The annotations recovered from one text excerpt.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Recognized entities with mention counts.
    pub entities: Vec<(EntityId, u32)>,
    /// Stemmed description terms with occurrence counts (entity mentions
    /// excluded — they are entities, not description).
    pub term_counts: Vec<(TermId, u32)>,
    /// Rule-voted event type (`Other` when no rule fires).
    pub event_type: EventType,
}

/// Gazetteer-backed annotator with a shared term interner.
#[derive(Debug, Clone)]
pub struct Annotator {
    gazetteer: Gazetteer,
    terms: Interner<TermId>,
}

impl Annotator {
    /// Build an annotator around a compiled gazetteer.
    pub fn new(gazetteer: Gazetteer) -> Self {
        Annotator {
            gazetteer,
            terms: Interner::new(),
        }
    }

    /// The gazetteer in use.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gazetteer
    }

    /// The term interner (grows as new terms are seen).
    pub fn terms(&self) -> &Interner<TermId> {
        &self.terms
    }

    /// Resolve a term id back to its display string.
    pub fn term_name(&self, id: TermId) -> Option<&str> {
        self.terms.resolve(id)
    }

    /// Annotate one text excerpt.
    pub fn annotate(&mut self, text: &str) -> Annotation {
        let tokens = tokenize(text);
        let mentions = self.gazetteer.recognize(&tokens);

        // Entity mention counts; remember which token indexes are
        // covered by entities so they do not double as terms.
        let mut entity_counts: HashMap<EntityId, u32> = HashMap::new();
        let mut covered = vec![false; tokens.len()];
        for m in &mentions {
            *entity_counts.entry(m.entity).or_insert(0) += 1;
            for c in covered.iter_mut().take(m.token_end).skip(m.token_start) {
                *c = true;
            }
        }

        // Description terms: stem the uncovered, non-stopword tokens.
        let mut term_counts: HashMap<TermId, u32> = HashMap::new();
        let mut votes: HashMap<EventType, u32> = HashMap::new();
        for (i, tok) in tokens.iter().enumerate() {
            if covered[i] || is_stopword(&tok.norm) || tok.norm.len() < 3 {
                continue;
            }
            let stem = porter_stem(&tok.norm);
            for &(kw, ty) in EVENT_RULES {
                if stem == kw {
                    *votes.entry(ty).or_insert(0) += 1;
                }
            }
            let id = self.terms.get_or_intern(&stem);
            *term_counts.entry(id).or_insert(0) += 1;
        }

        let event_type = votes
            .into_iter()
            .max_by_key(|&(ty, c)| (c, std::cmp::Reverse(ty.code())))
            .map(|(ty, _)| ty)
            .unwrap_or(EventType::Other);

        let mut entities: Vec<(EntityId, u32)> = entity_counts.into_iter().collect();
        entities.sort_unstable();
        let mut term_counts: Vec<(TermId, u32)> = term_counts.into_iter().collect();
        term_counts.sort_unstable();

        Annotation {
            entities,
            term_counts,
            event_type,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_text::GazetteerBuilder;

    fn annotator() -> Annotator {
        let mut g = GazetteerBuilder::new();
        g.add_entity(EntityId::new(0), "Ukraine", &["UKR"]);
        g.add_entity(EntityId::new(1), "Malaysia Airlines", &["MH17"]);
        g.add_entity(EntityId::new(2), "Russia", &["RUS"]);
        Annotator::new(g.build())
    }

    #[test]
    fn entities_and_terms_are_separated() {
        let mut a = annotator();
        let ann = a.annotate("A Malaysia Airlines jet crashed over Ukraine; Ukraine blamed separatists.");
        assert_eq!(ann.entities.len(), 2);
        assert_eq!(ann.entities[0], (EntityId::new(0), 2)); // Ukraine twice
        assert_eq!(ann.entities[1], (EntityId::new(1), 1));
        // "malaysia"/"airlines"/"ukraine" must not appear as terms.
        let names: Vec<&str> = ann
            .term_counts
            .iter()
            .filter_map(|&(t, _)| a.term_name(t))
            .collect();
        assert!(names.contains(&"jet"));
        assert!(names.contains(&"crash"));
        assert!(!names.contains(&"ukrain"));
        assert!(!names.contains(&"malaysia"));
    }

    #[test]
    fn event_type_voting() {
        let mut a = annotator();
        assert_eq!(
            a.annotate("The jet crashed and exploded near the border").event_type,
            EventType::Accident
        );
        assert_eq!(
            a.annotate("Protests and demonstrations swept the capital").event_type,
            EventType::Protest
        );
        assert_eq!(
            a.annotate("Sanctions were negotiated at the summit").event_type,
            EventType::Diplomacy
        );
        assert_eq!(a.annotate("A quiet afternoon by the lake").event_type, EventType::Other);
    }

    #[test]
    fn stemming_conflates_inflections() {
        let mut a = annotator();
        let ann = a.annotate("investigators investigate the investigation");
        // All three inflections share one stem and one term id.
        assert_eq!(ann.term_counts.len(), 1);
        assert_eq!(ann.term_counts[0].1, 3);
    }

    #[test]
    fn stopwords_and_short_tokens_dropped() {
        let mut a = annotator();
        let ann = a.annotate("it is of to go on at");
        assert!(ann.term_counts.is_empty());
    }

    #[test]
    fn interner_is_shared_across_calls() {
        let mut a = annotator();
        let first = a.annotate("missile strike reported");
        let second = a.annotate("another missile strike");
        let missile_first = first.term_counts.iter().find(|&&(t, _)| a.term_name(t) == Some("missil"));
        let missile_second = second.term_counts.iter().find(|&&(t, _)| a.term_name(t) == Some("missil"));
        assert_eq!(missile_first.map(|x| x.0), missile_second.map(|x| x.0));
    }

    #[test]
    fn empty_text_annotates_empty() {
        let mut a = annotator();
        let ann = a.annotate("");
        assert!(ann.entities.is_empty());
        assert!(ann.term_counts.is_empty());
        assert_eq!(ann.event_type, EventType::Other);
    }
}
