//! Quickstart: detect one cross-source story from five snippets.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use storypivot::prelude::*;

fn main() {
    // A pivot with default configuration (temporal identification,
    // ω = 14 days).
    let mut pivot = StoryPivot::new(PivotConfig::default());
    let nyt = pivot.add_source("New York Times", SourceKind::Newspaper);
    let wsj = pivot.add_source("Wall Street Journal", SourceKind::Newspaper);

    // Interned vocabulary (a real application uses the extraction
    // pipeline in `storypivot-extract`; see examples/ukraine_mh17.rs).
    let ukraine = EntityId::new(0);
    let malaysia = EntityId::new(1);
    let russia = EntityId::new(2);
    let crash = TermId::new(0);
    let plane = TermId::new(1);
    let investigation = TermId::new(2);

    let day = |d: u32| Timestamp::from_ymd(2014, 7, d);

    // Ingest the paper's example tuples:
    // <NYT, Accident, {Ukraine, Malaysia Airlines}, "Plane Crash", 07/17/2014> …
    let snippets = [
        (nyt, day(17), "Jetliner Explodes over Ukraine", vec![ukraine, malaysia], vec![crash, plane]),
        (wsj, day(17), "Malaysia Airlines Jet Crashes", vec![ukraine, malaysia, russia], vec![crash, plane]),
        (nyt, day(18), "Ukraine Asks U.N. to Help Investigation", vec![ukraine, malaysia], vec![crash, investigation]),
        (wsj, day(19), "Criminal Investigation Begins", vec![ukraine, malaysia], vec![plane, investigation]),
        (nyt, day(22), "Evidence of Russian Links", vec![ukraine, russia], vec![plane, investigation]),
    ];
    for (i, (source, t, headline, entities, terms)) in snippets.into_iter().enumerate() {
        let snippet = Snippet::builder(SnippetId::new(i as u32), source, t)
            .entities(entities)
            .terms(terms)
            .event_type(EventType::Accident)
            .headline(headline)
            .build();
        let story = pivot.ingest(snippet).expect("registered source");
        println!("ingested v{i} -> per-source story {story}");
    }

    // Phase 2: align stories across sources.
    pivot.align();
    println!("\nGlobal stories: {}", pivot.global_stories().len());
    for g in pivot.global_stories() {
        println!(
            "{}: {} snippets from {} sources, lifespan {}, {} aligning / {} enriching",
            g.id,
            g.len(),
            g.source_count(),
            g.lifespan,
            g.aligning().count(),
            g.enriching().count(),
        );
        for &(m, role) in &g.members {
            let sn = pivot.store().get(m).unwrap();
            println!("    {m} [{role:?}] {} {}", sn.timestamp, sn.content.headline);
        }
    }

    assert_eq!(pivot.global_stories().len(), 1);
    assert!(pivot.global_stories()[0].is_cross_source());
    println!("\nOne integrated story across both sources — as expected.");
}
