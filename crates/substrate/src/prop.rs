//! A minimal property-testing harness.
//!
//! [`run`] executes a property closure over `cases` deterministic,
//! independently seeded RNGs. The closure draws its own random inputs
//! (plain functions over [`StdRng`] replace combinator strategies) and
//! asserts with the ordinary `assert!`/`assert_eq!` macros. When a case
//! fails, the harness prints the case's seed and re-raises the panic;
//! setting `STORYPIVOT_PROP_SEED=<seed>` replays exactly that case.
//!
//! ```
//! use storypivot_substrate::prop;
//! use storypivot_substrate::rng::RngExt;
//!
//! prop::run(64, |rng| {
//!     let x: i64 = rng.random_range(-100..100);
//!     assert_eq!(x + 0, x);
//! });
//! ```

use std::collections::HashSet;
use std::hash::Hash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, RngExt, StdRng};

/// Environment variable that replays a single failing case.
pub const REPLAY_ENV: &str = "STORYPIVOT_PROP_SEED";

/// Environment variable that scales every `run` call's case count
/// (e.g. `STORYPIVOT_PROP_CASES_MULT=10` for a deeper soak).
pub const CASES_MULT_ENV: &str = "STORYPIVOT_PROP_CASES_MULT";

/// Run `property` over `cases` deterministic cases. See the module docs.
pub fn run(cases: u32, mut property: impl FnMut(&mut StdRng)) {
    if let Ok(raw) = std::env::var(REPLAY_ENV) {
        let seed: u64 = raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{REPLAY_ENV} must be a u64, got {raw:?}"));
        eprintln!("replaying property case with seed {seed}");
        property(&mut StdRng::seed_from_u64(seed));
        return;
    }
    let mult: u32 = std::env::var(CASES_MULT_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1);
    // A fixed base keeps case seeds identical run-to-run; deriving them
    // through SplitMix64 decorrelates consecutive cases.
    let mut derive_state = 0x5709_7010_7e57_ca5eu64;
    for case in 0..cases.saturating_mul(mult).max(1) {
        let seed = splitmix64(&mut derive_state);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            property(&mut StdRng::seed_from_u64(seed))
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed at case {case}/{cases}; replay with {REPLAY_ENV}={seed}"
            );
            resume_unwind(payload);
        }
    }
}

// ---- generator helpers ------------------------------------------------

/// A `Vec` whose length is drawn from `min..=max` and whose elements
/// come from `element`.
pub fn vec_with<T>(
    rng: &mut StdRng,
    min: usize,
    max: usize,
    mut element: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let len = rng.random_range(min..=max);
    (0..len).map(|_| element(rng)).collect()
}

/// A `HashSet` targeting a size drawn from `min..=max`. Duplicate draws
/// are retried a bounded number of times, so the result can fall short
/// of the target (but never below what distinct draws produced).
pub fn set_with<T: Eq + Hash>(
    rng: &mut StdRng,
    min: usize,
    max: usize,
    mut element: impl FnMut(&mut StdRng) -> T,
) -> HashSet<T> {
    let target = rng.random_range(min..=max);
    let mut out = HashSet::with_capacity(target);
    let mut attempts = 0usize;
    while out.len() < target && attempts < 64 * target + 64 {
        out.insert(element(rng));
        attempts += 1;
    }
    out
}

/// A string of length `min..=max` drawn uniformly from `alphabet`.
///
/// # Panics
/// Panics when `alphabet` is empty and `max > 0`.
pub fn string_from(rng: &mut StdRng, alphabet: &str, min: usize, max: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    let len = rng.random_range(min..=max);
    (0..len)
        .map(|_| chars[rng.random_range(0..chars.len())])
        .collect()
}

/// A string of printable ASCII (`' '..='~'`), length `min..=max`.
pub fn ascii_string(rng: &mut StdRng, min: usize, max: usize) -> String {
    let len = rng.random_range(min..=max);
    (0..len)
        .map(|_| rng.random_range(b' '..=b'~') as char)
        .collect()
}

/// A string of printable Unicode scalars (no control characters),
/// length `min..=max` in *characters* — mixes ASCII with multi-byte
/// ranges so UTF-8 boundary handling gets exercised.
pub fn unicode_string(rng: &mut StdRng, min: usize, max: usize) -> String {
    let len = rng.random_range(min..=max);
    (0..len).map(|_| printable_char(rng)).collect()
}

fn printable_char(rng: &mut StdRng) -> char {
    loop {
        let c = match rng.random_range(0..10u32) {
            0..=5 => Some(char::from(rng.random_range(b' '..=b'~'))), // ASCII
            6 => char::from_u32(rng.random_range(0x00A1..0x0250u32)), // Latin-1/Extended
            7 => char::from_u32(rng.random_range(0x0391..0x03CAu32)), // Greek
            8 => char::from_u32(rng.random_range(0x4E00..0x9FFFu32)), // CJK
            _ => char::from_u32(rng.random_range(0x1F300..0x1F600u32)), // emoji
        };
        match c {
            Some(c) if !c.is_control() => return c,
            _ => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        run(8, |rng| first.push(rng.random()));
        let mut second: Vec<u64> = Vec::new();
        run(8, |rng| second.push(rng.random()));
        assert_eq!(first, second);
        // Distinct cases draw distinct values.
        let unique: HashSet<u64> = first.iter().copied().collect();
        assert_eq!(unique.len(), first.len());
    }

    #[test]
    fn failing_case_reports_a_replayable_seed() {
        // Find the seed the harness would report, then check replaying
        // it reproduces the same drawn value.
        let failure = catch_unwind(AssertUnwindSafe(|| {
            run(16, |rng| {
                let x: u64 = rng.random();
                assert!(!x.is_multiple_of(7), "seeded failure with draw {x}");
            });
        }));
        if failure.is_err() {
            // At least one of 16 uniform draws being ≡ 0 (mod 7) is
            // expected; the message path above already printed the seed.
            // Re-running deterministically fails again.
            let second = catch_unwind(AssertUnwindSafe(|| {
                run(16, |rng| {
                    let x: u64 = rng.random();
                    assert!(!x.is_multiple_of(7));
                });
            }));
            assert!(second.is_err(), "deterministic harness must fail again");
        }
    }

    #[test]
    fn helpers_respect_their_bounds() {
        run(32, |rng| {
            let v = vec_with(rng, 2, 5, |r| r.random::<u32>());
            assert!((2..=5).contains(&v.len()));
            let s = string_from(rng, "ab", 1, 4);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let a = ascii_string(rng, 0, 10);
            assert!(a.chars().all(|c| (' '..='~').contains(&c)));
            let u = unicode_string(rng, 0, 20);
            assert!(u.chars().all(|c| !c.is_control()));
            assert!(u.chars().count() <= 20);
            let set = set_with(rng, 1, 8, |r| r.random_range(0..1000u32));
            assert!(!set.is_empty() && set.len() <= 8);
        });
    }
}
