//! End-to-end serving tests: a loopback pivotd server must reach the
//! same story partition as in-process ingest of the same corpus, BUSY
//! backpressure must engage (and recover) under a tiny queue, and a
//! graceful SHUTDOWN must leave a restorable checkpoint.

use std::path::PathBuf;

use storypivot::core::config::PivotConfig;
use storypivot::core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot::core::pivot::StoryPivot;
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::serve::client::Client;
use storypivot::serve::load::{replay, LoadOptions};
use storypivot::serve::server::{serve, ServerConfig};
use storypivot::serve::IngestReply;
use storypivot::types::{EntityId, Snippet, SnippetId, SourceKind, TermId, Timestamp};

/// The story partition as (story id, sorted member ids), sorted by id —
/// the serving layer's summaries and the engine's own partition project
/// onto the same shape.
type Partition = Vec<(u32, Vec<u32>)>;

fn partition_of_engine(pivot: &StoryPivot) -> Partition {
    pivot
        .story_partition()
        .into_iter()
        .map(|(id, members)| (id.raw(), members.into_iter().map(|m| m.raw()).collect()))
        .collect()
}

fn partition_of_summaries(summaries: &[storypivot::serve::StorySummary]) -> Partition {
    let mut out: Partition = summaries
        .iter()
        .map(|s| (s.id.raw(), s.members.iter().map(|m| m.raw()).collect()))
        .collect();
    out.sort();
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("storypivot-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// align_every = 0 makes the pipeline flush-only, so the engine's state
/// is a pure function of the per-shard ingest sequence — exactly what
/// the wire adds nothing to. That makes served-vs-in-process equality
/// exact rather than approximate.
fn flush_only_config(shards: usize, checkpoint_dir: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        shards,
        align_every: 0,
        checkpoint_dir,
        ..ServerConfig::default()
    }
}

#[test]
fn served_partition_matches_in_process_and_checkpoint_restores() {
    let corpus = CorpusBuilder::new(
        GenConfig::default().with_seed(42).with_sources(4).with_target_snippets(300),
    )
    .build();
    let ckpt = scratch_dir("single");

    let handle = serve("127.0.0.1:0", flush_only_config(1, Some(ckpt.clone()))).unwrap();
    let addr = handle.addr();

    let report = replay(addr, &corpus, &LoadOptions { connections: 1, ..LoadOptions::default() })
        .unwrap();
    assert_eq!(report.events as usize, corpus.len());

    // In-process twin: same config, same policy, same delivery order.
    let mut twin = DynamicPivot::new(
        PivotConfig::default(),
        PipelinePolicy { align_every: 0, ..PipelinePolicy::default() },
    );
    for source in &corpus.sources {
        twin.pivot_mut().add_source_with_lag(
            source.name.clone(),
            source.kind,
            source.typical_lag,
        );
    }
    for snippet in &corpus.snippets {
        twin.ingest(snippet.clone()).unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let served = partition_of_summaries(&client.query_stories().unwrap());
    assert_eq!(served, partition_of_engine(twin.pivot()), "served partition must match in-process");

    let stats = client.stats().unwrap();
    assert_eq!(stats.total_ingested() as usize, corpus.len());
    assert_eq!(stats.shards.len(), 1);

    // Graceful shutdown: the ack means drained + checkpointed (a
    // generation-numbered file written atomically via temp + rename).
    client.shutdown().unwrap();
    handle.join();
    let (restored, generation) =
        storypivot::core::checkpoint::load_newest(&ckpt, 0, PivotConfig::default())
            .unwrap()
            .expect("shutdown must write a shard 0 checkpoint generation");
    assert!(generation >= 1, "shutdown checkpoint must carry a generation");

    // The checkpoint restores the *flushed* engine (drain runs a final
    // align + refine before saving) — flush the twin to match.
    twin.flush();
    assert_eq!(
        partition_of_engine(&restored),
        partition_of_engine(twin.pivot()),
        "restored checkpoint must match the flushed in-process engine"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn sharded_server_matches_sharded_in_process_replica() {
    let corpus = CorpusBuilder::new(
        GenConfig::default().with_seed(43).with_sources(6).with_target_snippets(400),
    )
    .build();

    let shards = 3;
    let handle = serve("127.0.0.1:0", flush_only_config(shards, None)).unwrap();
    let addr = handle.addr();

    // Connections = shards, so lane k (sources ≡ k mod 3) feeds shard k
    // in exactly per-lane delivery order.
    let report = replay(
        addr,
        &corpus,
        &LoadOptions { connections: shards, ..LoadOptions::default() },
    )
    .unwrap();
    assert_eq!(report.events as usize, corpus.len());

    // In-process replica of the sharded topology.
    let mut replicas: Vec<DynamicPivot> = (0..shards)
        .map(|_| {
            DynamicPivot::new(
                PivotConfig::default(),
                PipelinePolicy { align_every: 0, ..PipelinePolicy::default() },
            )
        })
        .collect();
    for source in &corpus.sources {
        let shard = source.id.raw() as usize % shards;
        replicas[shard].pivot_mut().add_source_registered(source.clone()).unwrap();
    }
    for snippet in &corpus.snippets {
        let shard = snippet.source.raw() as usize % shards;
        replicas[shard].ingest(snippet.clone()).unwrap();
    }
    let mut expected: Partition = replicas
        .iter()
        .flat_map(|dp| partition_of_engine(dp.pivot()))
        .collect();
    expected.sort();

    let mut client = Client::connect(addr).unwrap();
    let served = partition_of_summaries(&client.query_stories().unwrap());
    assert_eq!(served, expected, "sharded served partition must match the sharded replica");

    // Story ids are partitioned by source, so per-source identification
    // is shard-invariant: every source contributes the same stories it
    // would in any other topology.
    let single_sourced: std::collections::BTreeSet<u32> = served
        .iter()
        .map(|(id, _)| id / storypivot::core::identify::STORY_ID_STRIDE)
        .collect();
    assert!(single_sourced.len() > 1, "multiple sources must own stories");

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn tiny_queue_pushes_back_with_busy_and_recovers() {
    let cfg = ServerConfig {
        shards: 1,
        queue_depth: 1,
        align_every: 0,
        retry_after_ms: 5,
        worker_delay: std::time::Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();

    let mut setup = Client::connect(addr).unwrap();
    setup.add_source("slow", SourceKind::Wire, 0).unwrap();

    // Three producers hammer a 1-deep queue served at 10 ms/job: pushes
    // must bounce with BUSY, and retrying must land every snippet.
    let producers = 3u32;
    let per_producer = 5u32;
    let mut threads = Vec::new();
    for p in 0..producers {
        threads.push(std::thread::spawn(move || -> (u64, u32) {
            let mut client = Client::connect(addr).unwrap();
            let mut busy = 0u64;
            for i in 0..per_producer {
                let id = p * per_producer + i;
                let snippet = Snippet::builder(
                    SnippetId::new(id),
                    storypivot::types::SourceId::new(0),
                    Timestamp::from_secs(i as i64 * 3_600),
                )
                .entity(EntityId::new(id % 3), 1.0)
                .term(TermId::new(id % 3), 1.0)
                .build();
                // First a raw attempt so BUSY is observable, then retry
                // until the snippet lands.
                match client.ingest(&snippet).unwrap() {
                    IngestReply::Assigned(_) => {}
                    IngestReply::Busy { retry_after_ms }
                    | IngestReply::Shed { retry_after_ms } => {
                        busy += 1;
                        assert!(retry_after_ms > 0, "BUSY must carry a retry hint");
                        std::thread::sleep(std::time::Duration::from_millis(retry_after_ms as u64));
                        client.ingest_retry(&snippet, 1_000).unwrap();
                    }
                }
            }
            (busy, per_producer)
        }));
    }
    let mut busy_total = 0u64;
    let mut sent = 0u32;
    for t in threads {
        let (busy, n) = t.join().unwrap();
        busy_total += busy;
        sent += n;
    }
    assert_eq!(sent, producers * per_producer);
    assert!(
        busy_total > 0,
        "three producers on a 1-deep, 10ms-per-job queue must see BUSY at least once"
    );

    // Every snippet eventually landed, and the server counted the
    // rejections it issued.
    let stats = setup.stats().unwrap();
    assert_eq!(stats.total_ingested(), (producers * per_producer) as u64);
    assert!(stats.total_busy() >= busy_total);

    setup.shutdown().unwrap();
    handle.join();
}

/// Pull `name value` (no labels) out of a Prometheus-style exposition.
fn exposition_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[test]
fn metrics_exposition_matches_in_process_engine() {
    let corpus = CorpusBuilder::new(
        GenConfig::default().with_seed(44).with_sources(3).with_target_snippets(250),
    )
    .build();

    // One shard so the served engine sees the exact same ingest
    // sequence as the in-process twin.
    let handle = serve("127.0.0.1:0", flush_only_config(1, None)).unwrap();
    let addr = handle.addr();
    let report = replay(addr, &corpus, &LoadOptions { connections: 1, ..LoadOptions::default() })
        .unwrap();
    assert_eq!(report.events as usize, corpus.len());

    // Twin with its own live registry, fed identically.
    let registry = storypivot::substrate::metrics::Registry::new();
    let mut twin = DynamicPivot::new(
        PivotConfig::default(),
        PipelinePolicy { align_every: 0, ..PipelinePolicy::default() },
    );
    twin.pivot_mut().set_metrics(storypivot::core::EngineMetrics::register(&registry));
    for source in &corpus.sources {
        twin.pivot_mut().add_source_with_lag(
            source.name.clone(),
            source.kind,
            source.typical_lag,
        );
    }
    for snippet in &corpus.snippets {
        twin.ingest(snippet.clone()).unwrap();
    }
    let twin_metrics = twin.pivot().metrics().clone();

    let mut client = Client::connect(addr).unwrap();
    let text = client.metrics().unwrap();

    // Counter values in the exposition must equal engine-side truth.
    assert_eq!(exposition_value(&text, "storypivot_ingest_total"), Some(corpus.len() as u64));
    assert_eq!(
        exposition_value(&text, "storypivot_identify_assigned_total"),
        Some(twin_metrics.identify_assigned_total.get()),
    );
    assert_eq!(
        exposition_value(&text, "storypivot_identify_new_story_total"),
        Some(twin_metrics.identify_new_story_total.get()),
    );
    assert_eq!(
        exposition_value(&text, "storypivot_identify_compared_total"),
        Some(twin_metrics.identify_compared_total.get()),
    );
    // The per-stage duration histogram saw one observation per snippet.
    assert_eq!(
        exposition_value(&text, "storypivot_identify_duration_ns_count"),
        Some(corpus.len() as u64),
    );
    // Exposition structure: HELP/TYPE headers and the shard-labeled
    // serving series are present.
    assert!(text.contains("# HELP storypivot_ingest_total"));
    assert!(text.contains("# TYPE storypivot_ingest_total counter"));
    assert!(text.contains("storypivot_shard_queue_capacity{shard=\"0\"}"));
    assert!(text.contains("storypivot_shard_ingest_latency_ns_count{shard=\"0\"}"));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn metrics_merge_across_shards_sums_counters() {
    let corpus = CorpusBuilder::new(
        GenConfig::default().with_seed(45).with_sources(6).with_target_snippets(300),
    )
    .build();
    let shards = 3;
    let handle = serve("127.0.0.1:0", flush_only_config(shards, None)).unwrap();
    let addr = handle.addr();
    replay(addr, &corpus, &LoadOptions { connections: shards, ..LoadOptions::default() }).unwrap();

    let mut client = Client::connect(addr).unwrap();
    let text = client.metrics().unwrap();
    // Engine counters are shard-invariant: the merged total equals the
    // full corpus no matter how sources were partitioned.
    assert_eq!(exposition_value(&text, "storypivot_ingest_total"), Some(corpus.len() as u64));
    assert_eq!(
        exposition_value(&text, "storypivot_identify_duration_ns_count"),
        Some(corpus.len() as u64),
    );
    // Every shard's labeled serving series survives the merge.
    for shard in 0..shards {
        assert!(
            text.contains(&format!("storypivot_shard_queue_capacity{{shard=\"{shard}\"}}")),
            "missing shard {shard} series in:\n{text}"
        );
    }

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn shutdown_is_idempotent_and_drains_pending_work() {
    let cfg = ServerConfig {
        shards: 2,
        align_every: 0,
        worker_delay: std::time::Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    client.add_source("a", SourceKind::Wire, 0).unwrap();
    client.add_source("b", SourceKind::Blog, 0).unwrap();
    let batch: Vec<Snippet> = (0..40u32)
        .map(|i| {
            Snippet::builder(
                SnippetId::new(i),
                storypivot::types::SourceId::new(i % 2),
                Timestamp::from_secs(i as i64 * 3_600),
            )
            .entity(EntityId::new(i % 5), 1.0)
            .build()
        })
        .collect();
    assert_eq!(client.ingest_batch(batch).unwrap(), 40);

    // Two concurrent SHUTDOWNs: both must ack, neither may hang.
    let second = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.shutdown()
    });
    client.shutdown().unwrap();
    second.join().unwrap().unwrap();
    handle.join();
}

#[test]
fn query_storm_bypasses_the_shard_write_queue() {
    // A 1-deep queue drained at 100 ms/job: if reads still enqueued,
    // a 100-query storm would need ≥ 10 s and trip BUSY constantly.
    // Served from the published snapshots they finish in milliseconds
    // and the write queue stays empty throughout.
    let cfg = ServerConfig {
        shards: 1,
        queue_depth: 1,
        align_every: 0,
        worker_delay: std::time::Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.add_source("s", SourceKind::Wire, 0).unwrap();
    let snippet = Snippet::builder(
        SnippetId::new(0),
        storypivot::types::SourceId::new(0),
        Timestamp::from_secs(0),
    )
    .entity(EntityId::new(1), 1.0)
    .build();
    let story = match client.ingest(&snippet).unwrap() {
        IngestReply::Assigned(id) => id,
        other => panic!("expected assignment, got {other:?}"),
    };

    let storm = 100u64;
    let start = std::time::Instant::now();
    for _ in 0..storm / 2 {
        let stories = client.query_stories().unwrap();
        assert_eq!(stories.len(), 1, "snapshot must already hold the acked ingest");
        let got = client.get_story(story).unwrap();
        assert_eq!(got.id, story);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "query storm took {elapsed:?} — reads are riding the write queue again"
    );

    // The worker counted every snapshot-served read, and its queue was
    // empty when it measured itself (the stats job is the only rider).
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards[0].queries, storm);
    assert_eq!(stats.shards[0].queue_depth, 0, "reads must not occupy the write queue");

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn pipelined_requests_return_in_order_past_the_pipeline_cap() {
    // Write a burst of requests without reading a single response, then
    // collect them all: replies must arrive in request order even
    // though shards complete out of order, and the burst is larger than
    // max_pipeline so the server must stall reads and resume without
    // losing a frame.
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig {
            shards: 4,
            align_every: 0,
            max_pipeline: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.add_source("pipelined", SourceKind::Wire, 0).unwrap();

    let reqs: Vec<storypivot::serve::Request> = (0..64u32)
        .map(|i| {
            storypivot::serve::Request::IngestSnippet(
                Snippet::builder(
                    SnippetId::new(i),
                    storypivot::types::SourceId::new(0),
                    Timestamp::from_secs(i as i64 * 3_600),
                )
                .entity(EntityId::new(777), 1.0)
                .build(),
            )
        })
        .collect();
    let responses = client.pipelined(&reqs).unwrap();
    assert_eq!(responses.len(), 64);
    for (i, resp) in responses.iter().enumerate() {
        match resp {
            storypivot::serve::Response::Ingested(_) => {}
            other => panic!("request {i}: expected Ingested, got {other:?}"),
        }
    }

    // Interleave kinds: the reply *types* prove ordering (a swap would
    // pair a query with an ingest slot).
    let mixed = vec![
        storypivot::serve::Request::QueryStories,
        storypivot::serve::Request::Stats,
        storypivot::serve::Request::QueryStories,
    ];
    let replies = client.pipelined(&mixed).unwrap();
    assert!(matches!(replies[0], storypivot::serve::Response::Stories(_)));
    assert!(matches!(replies[1], storypivot::serve::Response::Stats(_)));
    assert!(matches!(replies[2], storypivot::serve::Response::Stories(_)));
    match &replies[0] {
        storypivot::serve::Response::Stories(stories) => {
            assert_eq!(stories.iter().map(|s| s.members.len()).sum::<usize>(), 64)
        }
        _ => unreachable!(),
    }

    client.shutdown().unwrap();
    handle.join();
}
