//! The document model.

use storypivot_types::{DocId, SourceId, Timestamp};

/// A fetched article/blog post/report, before extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Unique document id.
    pub id: DocId,
    /// The data source that published it.
    pub source: SourceId,
    /// Origin URL (display only).
    pub url: String,
    /// Title.
    pub title: String,
    /// Full body text; blank lines separate paragraphs.
    pub body: String,
    /// When the described event occurred (the extraction timestamp of
    /// the paper's tuple format).
    pub timestamp: Timestamp,
}

impl Document {
    /// Create a document.
    pub fn new<U, T, B>(
        id: DocId,
        source: SourceId,
        url: U,
        title: T,
        body: B,
        timestamp: Timestamp,
    ) -> Self
    where
        U: Into<String>,
        T: Into<String>,
        B: Into<String>,
    {
        Document {
            id,
            source,
            url: url.into(),
            title: title.into(),
            body: body.into(),
            timestamp,
        }
    }

    /// The document's paragraphs: blank-line separated, trimmed,
    /// non-empty.
    pub fn paragraphs(&self) -> Vec<&str> {
        self.body
            .split("\n\n")
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragraph_splitting() {
        let d = Document::new(
            DocId::new(0),
            SourceId::new(0),
            "http://example.com/a",
            "Title",
            "First paragraph.\n\nSecond paragraph,\nwith a soft break.\n\n\n\nThird.",
            Timestamp::EPOCH,
        );
        let ps = d.paragraphs();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0], "First paragraph.");
        assert!(ps[1].contains("soft break"));
        assert_eq!(ps[2], "Third.");
    }

    #[test]
    fn empty_body_has_no_paragraphs() {
        let d = Document::new(DocId::new(0), SourceId::new(0), "", "T", "  \n\n  ", Timestamp::EPOCH);
        assert!(d.paragraphs().is_empty());
    }
}
