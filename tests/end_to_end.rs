//! End-to-end integration: generator → pivot → metrics, across crates.

use storypivot::core::config::PivotConfig;
use storypivot::eval::run::{run, RunOptions};
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::types::DAY;

fn corpus(target: usize, sources: u32, seed: u64) -> storypivot::gen::Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_sources(sources)
            .with_seed(seed)
            .with_target_snippets(target),
    )
    .build()
}

#[test]
fn temporal_pipeline_reaches_quality_floor() {
    let c = corpus(1_500, 8, 42);
    let r = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
    assert!(r.si_f1() > 0.8, "SI F1 {}", r.si_f1());
    assert!(r.sa_f1() > 0.8, "SA F1 {}", r.sa_f1());
    assert!(r.global_stories <= r.stories);
    assert!(r.global_stories >= c.truth.story_count() / 3);
}

#[test]
fn complete_mode_costs_more_comparisons_than_temporal() {
    let c = corpus(1_000, 6, 43);
    let t = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
    let f = run(&c, PivotConfig::complete(), RunOptions::default());
    assert!(
        f.comparisons > 2 * t.comparisons,
        "complete {} vs temporal {}",
        f.comparisons,
        t.comparisons
    );
}

#[test]
fn refinement_does_not_hurt_and_usually_helps() {
    let c = corpus(1_200, 8, 44);
    let base = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
    let refined = run(
        &c,
        PivotConfig::temporal(14 * DAY),
        RunOptions {
            refine: true,
            ..RunOptions::default()
        },
    );
    assert!(
        refined.sa_f1() >= base.sa_f1() - 0.02,
        "refine must not collapse quality: {} -> {}",
        base.sa_f1(),
        refined.sa_f1()
    );
}

#[test]
fn every_snippet_lands_in_exactly_one_global_story() {
    let c = corpus(800, 5, 45);
    let mut pivot = storypivot::prelude::StoryPivot::new(PivotConfig::default());
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        pivot.ingest(s.clone()).unwrap();
    }
    pivot.align();

    let mut seen = std::collections::HashSet::new();
    for g in pivot.global_stories() {
        for &(m, _) in &g.members {
            assert!(seen.insert(m), "snippet {m} appears in two global stories");
        }
    }
    assert_eq!(seen.len(), c.len(), "every snippet is covered");

    // Per-source stories partition snippets too.
    let mut story_members = std::collections::HashSet::new();
    for src in &c.sources {
        for st in pivot.stories_of_source(src.id) {
            assert_eq!(st.source(), src.id);
            for &m in &st.story.members {
                assert!(story_members.insert(m));
            }
        }
    }
    assert_eq!(story_members.len(), c.len());
}

#[test]
fn sketch_alignment_quality_close_to_exact() {
    let c = corpus(1_000, 10, 46);
    let exact = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
    let mut cfg = PivotConfig::temporal(14 * DAY);
    cfg.align.use_sketches = true;
    let sketched = run(&c, cfg, RunOptions::default());
    assert!(
        (exact.sa_f1() - sketched.sa_f1()).abs() < 0.1,
        "sketch F1 {} vs exact {}",
        sketched.sa_f1(),
        exact.sa_f1()
    );
}

#[test]
fn out_of_order_delivery_degrades_gracefully() {
    let c = corpus(1_000, 8, 47);
    assert!(c.inversion_fraction() > 0.0, "stream should be out of order");
    let delivery = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
    let sorted = run(
        &c,
        PivotConfig::temporal(14 * DAY),
        RunOptions {
            delivery_order: false,
            ..RunOptions::default()
        },
    );
    assert!(
        delivery.si_f1() > sorted.si_f1() - 0.1,
        "out-of-order {} vs in-order {}",
        delivery.si_f1(),
        sorted.si_f1()
    );
}

#[test]
fn parallel_ingest_matches_sequential_quality() {
    let c = corpus(800, 6, 48);
    let sequential = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());

    let mut pivot = storypivot::prelude::StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    pivot.ingest_batch_parallel(c.snippets.clone()).unwrap();
    pivot.align();
    let parallel_f1 = storypivot::eval::run::alignment_scores(&pivot, &c).f1;
    assert!(
        (sequential.sa_f1() - parallel_f1).abs() < 0.1,
        "parallel {} vs sequential {}",
        parallel_f1,
        sequential.sa_f1()
    );
}

#[test]
fn removing_a_source_removes_its_stories_and_keeps_the_rest() {
    let c = corpus(600, 4, 49);
    let mut pivot = storypivot::prelude::StoryPivot::new(PivotConfig::default());
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        pivot.ingest(s.clone()).unwrap();
    }
    pivot.align();

    let victim = c.sources[0].id;
    let victim_snips = c.snippets.iter().filter(|s| s.source == victim).count();
    let removed = pivot.remove_source(victim).unwrap();
    assert_eq!(removed, victim_snips);
    pivot.align_incremental();
    for g in pivot.global_stories() {
        assert!(!g.sources.contains(&victim), "global stories must drop the source");
        for &(m, _) in &g.members {
            assert_ne!(pivot.store().get(m).unwrap().source, victim);
        }
    }
    assert_eq!(pivot.store().len(), c.len() - victim_snips);
}
