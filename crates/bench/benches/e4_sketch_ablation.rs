//! E4 — alignment with exact centroid comparison vs MinHash sketches
//! (§2.4). Identification is done once per configuration in setup; the
//! measured region is the alignment pass alone.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use storypivot_bench::{corpus_fixed_period, ingest_all, OMEGA};
use storypivot_core::config::PivotConfig;

fn bench(c: &mut Criterion) {
    let corpus = corpus_fixed_period(1_000, 16, 17);
    let mut group = c.benchmark_group("e4_alignment");
    group.sample_size(10);
    for (name, use_sketches, k) in [("exact", false, 128usize), ("minhash_k64", true, 64), ("minhash_k256", true, 256)] {
        let mut cfg = PivotConfig::temporal(OMEGA);
        cfg.align.use_sketches = use_sketches;
        cfg.sketch.minhash_k = k;
        let pivot = ingest_all(&corpus, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &pivot, |b, pivot| {
            b.iter_batched(
                || pivot.clone(),
                |mut p| {
                    p.align();
                    p.global_stories().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
