//! String interning.
//!
//! Entities and description terms appear millions of times across a
//! corpus; interning maps each distinct (case-folded) string to a dense
//! integer id once, so all downstream similarity work operates on ids.

use std::collections::HashMap;

/// A generic string interner producing ids of type `Id`.
///
/// Strings are case-folded (ASCII lowercase) before interning, so
/// `"Ukraine"` and `"ukraine"` intern to the same id. The original
/// *first-seen* spelling is preserved for display.
///
/// ```
/// use storypivot_text::Interner;
/// use storypivot_types::EntityId;
/// let mut i = Interner::<EntityId>::new();
/// let a = i.get_or_intern("Ukraine");
/// let b = i.get_or_intern("UKRAINE");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), Some("Ukraine"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner<Id> {
    by_name: HashMap<String, Id>,
    names: Vec<String>,
}

impl<Id: Copy + From<u32> + Into<u32>> Interner<Id> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern `name`, returning its id (existing or freshly allocated).
    pub fn get_or_intern(&mut self, name: &str) -> Id {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = Id::from(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(key, id);
        id
    }

    /// Look up an already-interned string without allocating an id.
    pub fn get(&self, name: &str) -> Option<Id> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// The display spelling of `id` (first spelling seen).
    pub fn resolve(&self, id: Id) -> Option<&str> {
        self.names.get(id.into() as usize).map(String::as_str)
    }

    /// Iterate `(id, name)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Id::from(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, TermId};

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::<TermId>::new();
        let a = i.get_or_intern("crash");
        let b = i.get_or_intern("plane");
        let c = i.get_or_intern("crash");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(a, TermId::new(0));
        assert_eq!(b, TermId::new(1));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn case_folding_preserves_first_spelling() {
        let mut i = Interner::<EntityId>::new();
        let a = i.get_or_intern("Malaysia Airlines");
        assert_eq!(i.get_or_intern("MALAYSIA AIRLINES"), a);
        assert_eq!(i.resolve(a), Some("Malaysia Airlines"));
    }

    #[test]
    fn get_does_not_allocate() {
        let mut i = Interner::<TermId>::new();
        assert_eq!(i.get("missing"), None);
        let a = i.get_or_intern("found");
        assert_eq!(i.get("FOUND"), Some(a));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_out_of_range_is_none() {
        let i = Interner::<TermId>::new();
        assert_eq!(i.resolve(TermId::new(3)), None);
    }

    #[test]
    fn iteration_in_allocation_order() {
        let mut i = Interner::<TermId>::new();
        i.get_or_intern("a");
        i.get_or_intern("b");
        let all: Vec<_> = i.iter().map(|(id, n)| (id.raw(), n)).collect();
        assert_eq!(all, vec![(0, "a"), (1, "b")]);
    }
}
