//! E6 — incremental re-alignment after onboarding new sources vs a full
//! alignment pass (§2.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use storypivot_bench::{corpus_fixed_period, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;

fn bench(c: &mut Criterion) {
    let corpus = corpus_fixed_period(1_000, 12, 23);
    // Pre-state: 10 sources ingested and aligned; sources 10-11 ingested
    // but not yet aligned.
    let mut base = pivot_for(&corpus, PivotConfig::temporal(OMEGA));
    for s in &corpus.snippets {
        if s.source.raw() < 10 {
            base.ingest(s.clone()).unwrap();
        }
    }
    base.align();
    for s in &corpus.snippets {
        if s.source.raw() >= 10 {
            base.ingest(s.clone()).unwrap();
        }
    }

    let mut group = c.benchmark_group("e6_onboarding");
    group.sample_size(10);
    group.bench_function("incremental_realign", |b| {
        b.iter_batched(
            || base.clone(),
            |mut p| {
                p.align_incremental();
                p.global_stories().len()
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("full_realign", |b| {
        b.iter_batched(
            || base.clone(),
            |mut p| {
                p.align();
                p.global_stories().len()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
