//! A generic crash-safe append-only journal (write-ahead log).
//!
//! [`Wal`] knows nothing about what it stores: every record is an
//! opaque payload framed as
//!
//! ```text
//! record := len u32 (LE) | crc u32 (LE) | payload (len bytes)
//! crc    := CRC-32 (IEEE 802.3) over the payload
//! ```
//!
//! so any codec built on [`crate::buf`] can journal itself. The three
//! durability levers a long-running service needs are here:
//!
//! * **fsync policy** ([`SyncPolicy`]) — `Always` fsyncs after every
//!   append (an acked write survives power loss), `EveryN` amortises
//!   the fsync over batches, `Never` leaves flushing to the OS.
//! * **torn-tail repair** ([`scan`] / [`Wal::open`]) — a crash can tear
//!   the final record mid-write; the reader stops at the first record
//!   whose length or CRC does not check out and reports the byte offset
//!   of the valid prefix, and opening for append truncates the file to
//!   that prefix so the tear can never corrupt later records.
//! * **reset** ([`Wal::reset`]) — after a checkpoint makes the log's
//!   contents redundant, the log is truncated so replay time stays
//!   bounded by the checkpoint interval, not by total history.
//!
//! Corruption *before* the tail (a flipped bit in the middle of the
//! log) also stops the scan at the last good record; the scan reports
//! how many bytes were dropped so the caller can warn. This is the
//! deliberate trade of a single-file log: everything before the first
//! bad frame is trusted (CRC-checked), everything after it is not.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::fault::FaultHook;
use crate::metrics::{Counter, HistogramMetric};

/// Optional instrumentation hooks for a [`Wal`]; see
/// [`Wal::set_metrics`]. Detached handles (from a disabled
/// [`crate::metrics::Registry`]) make every hook a no-op.
#[derive(Clone, Default)]
pub struct WalMetrics {
    /// Duration of each [`Wal::append`] in nanoseconds (framing,
    /// write, and any policy-triggered fsync included).
    pub append_duration: HistogramMetric,
    /// Duration of each explicit or policy-triggered fsync in
    /// nanoseconds.
    pub sync_duration: HistogramMetric,
    /// Total journal bytes appended (framing included).
    pub appended_bytes: Counter,
}

/// Deterministic disk-fault hooks for a [`Wal`]; see
/// [`Wal::set_faults`]. Default (and any release build) is inert.
#[derive(Debug, Clone, Default)]
pub struct WalFaults {
    /// Fires *before* a record is written: the append fails cleanly
    /// with an out-of-space style error and the journal is unchanged,
    /// like a full disk rejecting the write.
    pub enospc: FaultHook,
    /// Fires *during* a record write: only a prefix of the record
    /// reaches the file, then the journal is repaired back to the last
    /// whole-record boundary and the append fails — byte-for-byte what
    /// a crash mid-write plus [`Wal::open`]'s torn-tail repair leaves
    /// behind, without restarting the process.
    pub short_write: FaultHook,
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), computed with
/// a table-free bitwise loop so the substrate stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Bytes of framing around every record (length prefix + CRC).
pub const RECORD_OVERHEAD: u64 = 8;

/// When the journal fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append — an acked append survives power loss.
    Always,
    /// fsync after every N appends (and on explicit [`Wal::sync`]).
    EveryN(u32),
    /// Never fsync implicitly; flushing is left to the OS page cache.
    Never,
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    /// Parse `always`, `never`, or `every:<n>` (CLI form).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            other => match other.strip_prefix("every:") {
                Some(n) => n
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .map(SyncPolicy::EveryN)
                    .ok_or_else(|| format!("every:<n> needs a positive integer, got {n:?}")),
                None => Err(format!(
                    "unknown sync policy {other:?} (use always, never, or every:<n>)"
                )),
            },
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            SyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// What a [`scan`] found in a journal file.
#[derive(Debug, Clone, Default)]
pub struct Scan {
    /// Every valid record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (where appends must resume).
    pub valid_len: u64,
    /// Bytes after the valid prefix that did not parse (torn tail or
    /// corruption) and will be dropped by [`Wal::open`].
    pub dropped_bytes: u64,
}

impl Scan {
    /// Whether the file ended with a torn or corrupt region.
    pub fn damaged(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// Split a byte run into its leading whole, CRC-valid records. Returns
/// the payload slices in append order plus the number of bytes they
/// framed (always a record boundary). The walk stops at the first
/// record whose header overruns the slice, whose length is absurd, or
/// whose CRC mismatches — the remainder (`bytes.len() - consumed`) is a
/// torn tail or corruption from the caller's point of view.
///
/// This is the single framing walk the crate trusts: [`scan`] uses it
/// for crash recovery, and replication uses it to cut a shipping batch
/// at a record boundary on the leader and to verify shipped bytes
/// before applying them on a follower.
pub fn split_records(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset + RECORD_OVERHEAD as usize <= bytes.len() {
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let payload_start = offset + RECORD_OVERHEAD as usize;
        let Some(payload_end) = payload_start.checked_add(len) else {
            break; // length overflows — corrupt header
        };
        if payload_end > bytes.len() {
            break; // torn tail: payload promised but not delivered
        }
        let payload = &bytes[payload_start..payload_end];
        if crc32(payload) != stored_crc {
            break; // bit flip (or a tear that landed inside the CRC)
        }
        records.push(payload);
        offset = payload_end;
    }
    (records, offset)
}

/// Read every valid record of a journal. A missing file is an empty
/// journal, not an error (a fresh shard has simply never logged).
/// The scan stops at the first record whose header overruns the file,
/// whose length is absurd, or whose CRC mismatches — everything before
/// that point is returned, everything after is counted as dropped.
pub fn scan(path: &Path) -> std::io::Result<Scan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Scan::default()),
        Err(e) => return Err(e),
    }
    let mut out = Scan::default();
    let (records, consumed) = split_records(&bytes);
    out.records = records.into_iter().map(<[u8]>::to_vec).collect();
    out.valid_len = consumed as u64;
    out.dropped_bytes = (bytes.len() - consumed) as u64;
    Ok(out)
}

/// Read up to `max` bytes of framed records from the journal file at
/// `path` starting at byte `offset`, trimmed back to the last whole
/// record boundary. This is the leader side of WAL shipping: the
/// caller hands a follower's resume offset (always a boundary, since
/// followers only advance by whole records) and gets a batch that a
/// follower can append verbatim. A missing file yields an empty batch.
pub fn read_records_range(path: &Path, offset: u64, max: usize) -> std::io::Result<Vec<u8>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; max];
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    buf.truncate(filled);
    let (_, whole) = split_records(&buf);
    buf.truncate(whole);
    Ok(buf)
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    policy: SyncPolicy,
    len: u64,
    appends_since_sync: u32,
    metrics: WalMetrics,
    faults: WalFaults,
}

impl std::fmt::Debug for WalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalMetrics").finish_non_exhaustive()
    }
}

impl Wal {
    /// Open (creating if absent) a journal for appending, first
    /// truncating any torn or corrupt tail found by [`scan`]. Returns
    /// the repaired journal and what the scan recovered.
    pub fn open(path: &Path, policy: SyncPolicy) -> std::io::Result<(Wal, Scan)> {
        let scanned = scan(path)?;
        // truncate(false): the valid prefix must survive reopening; the
        // torn tail (if any) is cut explicitly via set_len below.
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(false)
            .open(path)?;
        if scanned.damaged() {
            file.set_len(scanned.valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(scanned.valid_len))?;
        Ok((
            Wal {
                writer: BufWriter::new(file),
                path: path.to_path_buf(),
                policy,
                len: scanned.valid_len,
                appends_since_sync: 0,
                metrics: WalMetrics::default(),
                faults: WalFaults::default(),
            },
            scanned,
        ))
    }

    /// Attach instrumentation hooks (default: detached no-ops).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// Attach deterministic disk-fault hooks (default: inert; release
    /// builds are always inert regardless of what is attached).
    pub fn set_faults(&mut self, faults: WalFaults) {
        self.faults = faults;
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of valid journal (framing included) after the last append.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one record and apply the sync policy. Returns the journal
    /// length after the append.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let timer = self.metrics.append_duration.start();
        let mut header = [0u8; RECORD_OVERHEAD as usize];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        if self.faults.enospc.fire() {
            // Full-disk style rejection: nothing reaches the file, the
            // journal is exactly as it was, the caller sees a clean error.
            drop(timer);
            return Err(std::io::Error::other(
                "injected fault: no space left on journal device",
            ));
        }
        if self.faults.short_write.fire() {
            // Torn write: a prefix of the record lands on disk, then the
            // journal is repaired back to the last whole-record boundary —
            // the state a crash mid-write plus reopen repair would leave.
            self.writer.write_all(&header)?;
            self.writer.write_all(&payload[..payload.len() / 2])?;
            self.writer.flush()?;
            let file = self.writer.get_mut();
            file.set_len(self.len)?;
            file.sync_all()?;
            file.seek(SeekFrom::Start(self.len))?;
            drop(timer);
            return Err(std::io::Error::other(
                "injected fault: short write tore the record (repaired)",
            ));
        }
        self.writer.write_all(&header)?;
        self.writer.write_all(payload)?;
        self.len += RECORD_OVERHEAD + payload.len() as u64;
        self.appends_since_sync += 1;
        self.metrics
            .appended_bytes
            .add(RECORD_OVERHEAD + payload.len() as u64);
        // Every append is handed to the OS immediately (so an in-process
        // rebuild or a post-kill scan sees it); the policy only decides
        // when the kernel is forced to put it on the platter.
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                self.writer.flush()?;
                if self.appends_since_sync >= n {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => self.writer.flush()?,
        }
        drop(timer);
        Ok(self.len)
    }

    /// Flush buffered records and fsync to disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        let timer = self.metrics.sync_duration.start();
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        self.appends_since_sync = 0;
        drop(timer);
        Ok(())
    }

    /// Truncate the journal to zero length (call after a checkpoint has
    /// made its contents redundant). The truncation is fsynced: a crash
    /// right after a reset must not resurrect pre-checkpoint records.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let file = self.writer.get_ref();
        file.set_len(0)?;
        file.sync_all()?;
        self.writer.get_mut().seek(SeekFrom::Start(0))?;
        self.len = 0;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storypivot-subwal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_round_trips_in_order() {
        let path = tmp("roundtrip");
        {
            let (mut wal, scanned) = Wal::open(&path, SyncPolicy::Always).unwrap();
            assert!(scanned.records.is_empty());
            wal.append(b"alpha").unwrap();
            wal.append(b"").unwrap();
            wal.append(&[0xFF; 300]).unwrap();
        }
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 3);
        assert_eq!(scanned.records[0], b"alpha");
        assert_eq!(scanned.records[1], b"");
        assert_eq!(scanned.records[2], vec![0xFF; 300]);
        assert!(!scanned.damaged());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&path, SyncPolicy::Never).unwrap();
            wal.append(b"keep me").unwrap();
            wal.append(b"torn away").unwrap();
            wal.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut wal, scanned) = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert!(scanned.damaged());
        // Appending after the repair lands cleanly at the cut point.
        wal.append(b"after repair").unwrap();
        drop(wal);
        let rescanned = scan(&path).unwrap();
        assert_eq!(rescanned.records.len(), 2);
        assert_eq!(rescanned.records[1], b"after repair");
        assert!(!rescanned.damaged());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_last_good_record() {
        let path = tmp("flip");
        {
            let (mut wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"good one").unwrap();
            wal.append(b"bad one").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the second record.
        let second_payload = RECORD_OVERHEAD as usize + b"good one".len() + RECORD_OVERHEAD as usize;
        bytes[second_payload] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0], b"good one");
        assert!(scanned.damaged());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_truncates_and_reuses_the_file() {
        let path = tmp("reset");
        let (mut wal, _) = Wal::open(&path, SyncPolicy::EveryN(2)).unwrap();
        wal.append(b"pre-checkpoint").unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert_eq!(wal.len(), 0);
        wal.append(b"post-checkpoint").unwrap();
        wal.sync().unwrap();
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0], b"post-checkpoint");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn split_records_cuts_at_the_last_whole_boundary() {
        let path = tmp("split");
        {
            let (mut wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(b"three").unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let (records, consumed) = split_records(&bytes);
        assert_eq!(records, vec![&b"one"[..], b"two", b"three"]);
        assert_eq!(consumed, bytes.len());
        // Any mid-record cut keeps exactly the records before the cut.
        let second_start = RECORD_OVERHEAD as usize + 3;
        for cut in second_start..second_start + RECORD_OVERHEAD as usize + 3 {
            let (records, consumed) = split_records(&bytes[..cut]);
            assert_eq!(records, vec![&b"one"[..]], "cut {cut}");
            assert_eq!(consumed, second_start, "cut {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_records_range_resumes_and_trims() {
        let path = tmp("range");
        {
            let (mut wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.append(b"gamma").unwrap();
        }
        let first_len = RECORD_OVERHEAD as usize + 5;
        // Resume past the first record: the batch holds the rest.
        let batch = read_records_range(&path, first_len as u64, 1 << 20).unwrap();
        let (records, consumed) = split_records(&batch);
        assert_eq!(records, vec![&b"beta"[..], b"gamma"]);
        assert_eq!(consumed, batch.len());
        // A cap that lands mid-record is trimmed to the boundary.
        let tight = read_records_range(&path, 0, first_len + 3).unwrap();
        assert_eq!(tight.len(), first_len);
        // Past the end and missing files both yield empty batches.
        assert!(read_records_range(&path, 1 << 30, 64).unwrap().is_empty());
        assert!(read_records_range(Path::new("/nonexistent/x.wal"), 0, 64).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_scans_as_empty() {
        let scanned = scan(Path::new("/nonexistent/storypivot.wal")).unwrap();
        assert!(scanned.records.is_empty());
        assert_eq!(scanned.valid_len, 0);
    }

    #[test]
    fn metrics_hooks_observe_appends_and_syncs() {
        use crate::metrics::Registry;
        let path = tmp("metrics");
        let registry = Registry::new();
        let metrics = WalMetrics {
            append_duration: registry.histogram("storypivot_wal_append_duration_ns", "append ns"),
            sync_duration: registry.histogram("storypivot_wal_sync_duration_ns", "sync ns"),
            appended_bytes: registry.counter("storypivot_wal_appended_bytes_total", "bytes"),
        };
        let (mut wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
        wal.set_metrics(metrics.clone());
        wal.append(b"abcd").unwrap();
        wal.append(b"").unwrap();
        assert_eq!(metrics.append_duration.count(), 2);
        // Always-policy appends fsync inline, plus nothing extra.
        assert_eq!(metrics.sync_duration.count(), 2);
        assert_eq!(
            metrics.appended_bytes.get(),
            2 * RECORD_OVERHEAD + b"abcd".len() as u64
        );
        std::fs::remove_file(&path).ok();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn injected_faults_fail_the_append_but_never_corrupt_the_journal() {
        use crate::fault::FaultPlan;
        let path = tmp("faults");
        let plan = FaultPlan::parse("seed=3,wal_enospc=250,wal_short=250").unwrap();
        let (mut wal, _) = Wal::open(&path, SyncPolicy::Always).unwrap();
        wal.set_faults(WalFaults {
            enospc: plan.hook("wal_enospc", 0),
            short_write: plan.hook("wal_short", 0),
        });
        let mut landed: Vec<Vec<u8>> = Vec::new();
        let mut failures = 0u32;
        for i in 0..200u32 {
            let payload = format!("record-{i}").into_bytes();
            // Retry until the record lands, like a caller would.
            loop {
                match wal.append(&payload) {
                    Ok(_) => break,
                    Err(_) => failures += 1,
                }
            }
            landed.push(payload);
        }
        assert!(failures > 0, "a 25%+25% plan must fire within 200 appends");
        drop(wal);
        // Every acked record survives, in order, with nothing torn: the
        // scan sees exactly the landed set and no damage.
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records, landed);
        assert!(!scanned.damaged(), "short-write repair must leave whole records");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_policy_parses_from_cli_strings() {
        assert_eq!("always".parse::<SyncPolicy>().unwrap(), SyncPolicy::Always);
        assert_eq!("never".parse::<SyncPolicy>().unwrap(), SyncPolicy::Never);
        assert_eq!("every:64".parse::<SyncPolicy>().unwrap(), SyncPolicy::EveryN(64));
        assert!("every:0".parse::<SyncPolicy>().is_err());
        assert!("sometimes".parse::<SyncPolicy>().is_err());
        assert_eq!(SyncPolicy::EveryN(8).to_string(), "every:8");
    }
}
