//! Error type shared across StoryPivot crates.

use std::fmt;

/// Convenience alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for StoryPivot operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A referenced snippet does not exist.
    UnknownSnippet(crate::ids::SnippetId),
    /// A referenced story does not exist.
    UnknownStory(crate::ids::StoryId),
    /// A referenced global story does not exist.
    UnknownGlobalStory(crate::ids::GlobalStoryId),
    /// A referenced source does not exist.
    UnknownSource(crate::ids::SourceId),
    /// A referenced document does not exist.
    UnknownDocument(crate::ids::DocId),
    /// An item with the same identity was inserted twice.
    Duplicate(String),
    /// Textual parsing failed.
    Parse(String),
    /// Binary decoding failed (corrupt or truncated snapshot).
    Codec(String),
    /// A configuration value is out of its valid domain.
    InvalidConfig(String),
    /// An invariant the caller must uphold was violated.
    Invariant(String),
    /// Underlying I/O failure (carries the rendered source error).
    Io(String),
    /// The server stayed busy through every allowed retry; carries the
    /// number of attempts made before giving up.
    Busy {
        /// Attempts made (initial try plus retries).
        attempts: u32,
    },
    /// A write (or replication subscribe) was sent to a read-only
    /// follower replica; carries the leader's address so callers can
    /// follow the redirect.
    NotLeader {
        /// Address of the leader that accepts writes.
        leader_addr: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownSnippet(id) => write!(f, "unknown snippet {id}"),
            Error::UnknownStory(id) => write!(f, "unknown story {id}"),
            Error::UnknownGlobalStory(id) => write!(f, "unknown global story {id}"),
            Error::UnknownSource(id) => write!(f, "unknown source {id}"),
            Error::UnknownDocument(id) => write!(f, "unknown document {id}"),
            Error::Duplicate(what) => write!(f, "duplicate item: {what}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Busy { attempts } => {
                write!(f, "server busy after {attempts} attempts")
            }
            Error::NotLeader { leader_addr } => {
                write!(f, "not the leader; writes go to {leader_addr}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SnippetId;

    #[test]
    fn display_is_human_readable() {
        let e = Error::UnknownSnippet(SnippetId::new(7));
        assert_eq!(e.to_string(), "unknown snippet v7");
        let e = Error::Codec("truncated".into());
        assert_eq!(e.to_string(), "codec error: truncated");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
