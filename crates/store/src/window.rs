//! Per-source sliding-window index.
//!
//! Temporal story identification (paper §2.2, Figure 2b) compares an
//! incoming snippet only against snippets whose timestamp lies in
//! `[t-ω, t+ω]`. This index answers those range queries in
//! `O(log n + answer)` via a `BTreeMap` keyed by `(timestamp, id)`;
//! out-of-order insertion is naturally supported because a B-tree does
//! not care about arrival order.

use std::collections::BTreeMap;
use std::ops::Bound;

use storypivot_types::{SnippetId, TimeRange, Timestamp};

/// An ordered index from `(timestamp, snippet)` to the snippet's arena
/// slot in the owning store — a sorted map with range scans. Carrying
/// the slot lets range queries resolve snippets by direct indexing
/// instead of a per-hit hash lookup (the identification hot path runs
/// one such query per ingested snippet).
#[derive(Debug, Clone, Default)]
pub struct WindowIndex {
    entries: BTreeMap<(Timestamp, SnippetId), u32>,
}

impl WindowIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed snippets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index a snippet at its event timestamp, remembering its arena
    /// `slot` in the owning store. Idempotent (the slot is updated).
    pub fn insert(&mut self, at: Timestamp, id: SnippetId, slot: u32) {
        self.entries.insert((at, id), slot);
    }

    /// Remove a snippet; returns whether it was present.
    pub fn remove(&mut self, at: Timestamp, id: SnippetId) -> bool {
        self.entries.remove(&(at, id)).is_some()
    }

    /// All snippets with timestamp inside the closed `range`, in
    /// ascending `(timestamp, id)` order.
    pub fn query(&self, range: TimeRange) -> impl Iterator<Item = (Timestamp, SnippetId)> + '_ {
        let bounds = Self::bounds(range);
        self.entries.range(bounds).map(|(&(t, id), _)| (t, id))
    }

    /// Arena slots of all snippets with timestamp inside the closed
    /// `range`, in ascending `(timestamp, id)` order — the allocation-
    /// and hash-free variant of [`WindowIndex::query`].
    pub fn query_slots(&self, range: TimeRange) -> impl Iterator<Item = u32> + '_ {
        let bounds = Self::bounds(range);
        self.entries.range(bounds).map(|(_, &slot)| slot)
    }

    /// Range bounds over the `(timestamp, id)` key space for `range`.
    #[allow(clippy::type_complexity)]
    fn bounds(
        range: TimeRange,
    ) -> (
        Bound<(Timestamp, SnippetId)>,
        Bound<(Timestamp, SnippetId)>,
    ) {
        if range.is_empty() {
            // An empty range: produce an empty iterator via an
            // impossible bound pair on the same key space.
            (
                Bound::Included((Timestamp::MAX, SnippetId::new(u32::MAX))),
                Bound::Excluded((Timestamp::MAX, SnippetId::new(u32::MAX))),
            )
        } else {
            (
                Bound::Included((range.start, SnippetId::new(0))),
                Bound::Included((range.end, SnippetId::new(u32::MAX))),
            )
        }
    }

    /// Snippets in the symmetric window `[t-ω, t+ω]` (paper Figure 2b).
    pub fn window(&self, t: Timestamp, omega: i64) -> impl Iterator<Item = (Timestamp, SnippetId)> + '_ {
        self.query(TimeRange::window(t, omega))
    }

    /// Earliest indexed timestamp.
    pub fn min_timestamp(&self) -> Option<Timestamp> {
        self.entries.keys().next().map(|&(t, _)| t)
    }

    /// Latest indexed timestamp.
    pub fn max_timestamp(&self) -> Option<Timestamp> {
        self.entries.keys().next_back().map(|&(t, _)| t)
    }

    /// The tight time range covered by the indexed snippets.
    pub fn coverage(&self) -> TimeRange {
        match (self.min_timestamp(), self.max_timestamp()) {
            (Some(a), Some(b)) => TimeRange::new(a, b),
            _ => TimeRange::EMPTY,
        }
    }

    /// Iterate everything in `(timestamp, id)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, SnippetId)> + '_ {
        self.entries.keys().map(|&(t, id)| (t, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> SnippetId {
        SnippetId::new(i)
    }
    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn window_query_is_inclusive_both_ends() {
        let mut w = WindowIndex::new();
        for (t, i) in [(0, 0), (5, 1), (10, 2), (15, 3), (20, 4)] {
            w.insert(ts(t), id(i), 0);
        }
        let got: Vec<u32> = w.query(TimeRange::new(ts(5), ts(15))).map(|(_, i)| i.raw()).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn symmetric_window_matches_paper_semantics() {
        let mut w = WindowIndex::new();
        for t in 0..10 {
            w.insert(ts(t * 10), id(t as u32), 0);
        }
        // ω = 15 around t = 50: timestamps in [35, 65] → 40, 50, 60.
        let got: Vec<u32> = w.window(ts(50), 15).map(|(_, i)| i.raw()).collect();
        assert_eq!(got, vec![4, 5, 6]);
    }

    #[test]
    fn out_of_order_insertion_sorts() {
        let mut w = WindowIndex::new();
        w.insert(ts(30), id(3), 0);
        w.insert(ts(10), id(1), 0);
        w.insert(ts(20), id(2), 0);
        let order: Vec<i64> = w.iter().map(|(t, _)| t.secs()).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn same_timestamp_many_snippets() {
        let mut w = WindowIndex::new();
        w.insert(ts(5), id(2), 0);
        w.insert(ts(5), id(1), 0);
        w.insert(ts(5), id(3), 0);
        let got: Vec<u32> = w.query(TimeRange::instant(ts(5))).map(|(_, i)| i.raw()).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn remove_works_and_reports() {
        let mut w = WindowIndex::new();
        w.insert(ts(1), id(1), 0);
        assert!(w.remove(ts(1), id(1)));
        assert!(!w.remove(ts(1), id(1)));
        assert!(w.is_empty());
    }

    #[test]
    fn empty_range_returns_nothing() {
        let mut w = WindowIndex::new();
        w.insert(ts(1), id(1), 0);
        assert_eq!(w.query(TimeRange::EMPTY).count(), 0);
    }

    #[test]
    fn coverage_tracks_extremes() {
        let mut w = WindowIndex::new();
        assert!(w.coverage().is_empty());
        w.insert(ts(100), id(1), 0);
        w.insert(ts(-50), id(2), 0);
        assert_eq!(w.coverage(), TimeRange::new(ts(-50), ts(100)));
        assert_eq!(w.min_timestamp(), Some(ts(-50)));
        assert_eq!(w.max_timestamp(), Some(ts(100)));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut w = WindowIndex::new();
        w.insert(ts(1), id(1), 0);
        w.insert(ts(1), id(1), 0);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn extreme_timestamps_do_not_overflow() {
        let mut w = WindowIndex::new();
        w.insert(Timestamp::MAX, id(1), 0);
        w.insert(Timestamp::MIN, id(2), 0);
        // A window around MAX saturates instead of overflowing.
        let got: Vec<u32> = w.window(Timestamp::MAX, 10).map(|(_, i)| i.raw()).collect();
        assert_eq!(got, vec![1]);
    }
}
