//! Crash-equivalence: SIGKILL a real `pivotd` process mid-stream and
//! prove the restarted daemon serves exactly the partition an
//! uninterrupted in-process run produces. Exercises the whole
//! durability stack — WAL append/fsync, torn-tail repair, checkpoint
//! generations, startup replay — through the public binary.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use storypivot_core::config::PivotConfig;
use storypivot_core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot_gen::{Corpus, CorpusBuilder, GenConfig};
use storypivot_serve::client::Client;
use storypivot_serve::proto::StorySummary;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("storypivot-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the real pivotd binary and wait for its port file. The caller
/// owns reaping (each test kills or shuts the daemon down and waits);
/// on the timeout path below the child is killed and reaped here.
#[allow(clippy::zombie_processes)]
fn spawn_pivotd(extra: &[&str], port_file: &Path) -> (Child, SocketAddr) {
    let _ = std::fs::remove_file(port_file);
    let mut child = Command::new(env!("CARGO_BIN_EXE_pivotd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pivotd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(raw) = std::fs::read_to_string(port_file) {
            if let Ok(port) = raw.trim().parse::<u16>() {
                return (child, SocketAddr::from(([127, 0, 0, 1], port)));
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("pivotd did not write its port file");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Partition as story id → sorted member ids; exact, since with
/// `align_every 0` identification alone determines it.
fn partition_of_summaries(stories: &[StorySummary]) -> BTreeMap<u32, Vec<u32>> {
    stories
        .iter()
        .map(|s| {
            let mut members: Vec<u32> = s.members.iter().map(|m| m.raw()).collect();
            members.sort_unstable();
            (s.id.raw(), members)
        })
        .collect()
}

fn partition_of_engine(engine: &DynamicPivot) -> BTreeMap<u32, Vec<u32>> {
    engine
        .pivot()
        .story_partition()
        .into_iter()
        .map(|(id, members)| {
            let mut members: Vec<u32> = members.iter().map(|m| m.raw()).collect();
            members.sort_unstable();
            (id.raw(), members)
        })
        .collect()
}

fn corpus(seed: u64, events: usize) -> Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_seed(seed)
            .with_sources(4)
            .with_target_snippets(events),
    )
    .build()
}

/// The uninterrupted twin: one engine, same stream, never flushed.
fn twin_of(corpus: &Corpus) -> DynamicPivot {
    let mut twin = DynamicPivot::new(
        PivotConfig::default(),
        PipelinePolicy {
            align_every: 0,
            ..PipelinePolicy::default()
        },
    );
    for source in &corpus.sources {
        twin.pivot_mut().add_source_registered(source.clone()).unwrap();
    }
    for snippet in &corpus.snippets {
        twin.ingest(snippet.clone()).unwrap();
    }
    twin
}

fn ingest_all(client: &mut Client, corpus: &Corpus) {
    for source in &corpus.sources {
        let got = client
            .add_source(&source.name, source.kind, source.typical_lag)
            .unwrap();
        assert_eq!(got, source.id, "fresh server must allocate corpus ids");
    }
    for snippet in &corpus.snippets {
        client
            .ingest_backoff(snippet, Default::default())
            .expect("acked ingest");
    }
}

#[test]
fn sigkill_mid_stream_recovers_the_exact_partition() {
    let wal = scratch("wal-basic");
    let ckpt = scratch("ckpt-basic");
    let port_file = wal.join("port");
    let flags = [
        "--shards",
        "2",
        "--align-every",
        "0",
        "--fsync",
        "always",
        "--wal-dir",
    ];
    let mut args: Vec<&str> = flags.to_vec();
    let wal_s = wal.to_str().unwrap().to_string();
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    args.push(&wal_s);
    args.push("--checkpoint-dir");
    args.push(&ckpt_s);

    let corpus = corpus(7, 240);
    let (mut child, addr) = spawn_pivotd(&args, &port_file);
    let mut client = Client::connect(addr).unwrap();
    ingest_all(&mut client, &corpus);
    // Every snippet above was acknowledged under --fsync always; the
    // partition served *before* the crash is the reference.
    let before = partition_of_summaries(&client.query_stories().unwrap());
    drop(client);

    // SIGKILL: no drain, no checkpoint, no flush — only the WAL.
    child.kill().unwrap();
    let _ = child.wait();

    let (mut child2, addr2) = spawn_pivotd(&args, &port_file);
    let mut client = Client::connect(addr2).unwrap();
    let after = partition_of_summaries(&client.query_stories().unwrap());
    assert_eq!(after, before, "restart must reconstruct the acked partition");
    // And both equal the uninterrupted in-process run.
    assert_eq!(after, partition_of_engine(&twin_of(&corpus)));

    // Recovered engines keep allocating past recovered source ids.
    let extra = client.add_source("post-crash", corpus.sources[0].kind, 0).unwrap();
    assert_eq!(extra.raw(), corpus.sources.len() as u32);

    client.shutdown().unwrap();
    let status = child2.wait().unwrap();
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn sigkill_with_periodic_checkpoints_recovers_and_truncates() {
    let wal = scratch("wal-periodic");
    let ckpt = scratch("ckpt-periodic");
    let port_file = wal.join("port");
    let wal_s = wal.to_str().unwrap().to_string();
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    // A checkpoint every 4 KiB of journal: the 240-event stream crosses
    // the threshold many times, so recovery replays checkpoint + a
    // short tail rather than the whole history.
    let args = [
        "--shards",
        "2",
        "--align-every",
        "0",
        "--fsync",
        "every:8",
        "--checkpoint-every-bytes",
        "4096",
        "--wal-dir",
        &wal_s,
        "--checkpoint-dir",
        &ckpt_s,
    ];

    let corpus = corpus(11, 240);
    let (mut child, addr) = spawn_pivotd(&args, &port_file);
    let mut client = Client::connect(addr).unwrap();
    ingest_all(&mut client, &corpus);
    let before = partition_of_summaries(&client.query_stories().unwrap());
    let stats = client.stats().unwrap();
    drop(client);
    // Size-triggered checkpoints must have fired and truncated: no
    // shard's journal holds anywhere near the whole stream.
    for s in &stats.shards {
        assert!(
            s.wal_bytes < 64 * 1024,
            "shard {} wal grew to {} bytes despite periodic checkpoints",
            s.shard,
            s.wal_bytes
        );
    }
    let generations = std::fs::read_dir(&ckpt)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".spvc"))
        .count();
    assert!(generations >= 1, "periodic checkpoints must leave generation files");

    child.kill().unwrap();
    let _ = child.wait();

    // Under fsync every:8, up to 7 acked appends per shard may be lost
    // by the kill — but this test's writes all hit the OS page cache
    // and the process (not the machine) died, so the journal is whole.
    let (mut child2, addr2) = spawn_pivotd(&args, &port_file);
    let mut client = Client::connect(addr2).unwrap();
    let after = partition_of_summaries(&client.query_stories().unwrap());
    assert_eq!(after, before, "checkpoint + wal tail must rebuild the partition");
    client.shutdown().unwrap();
    let status = child2.wait().unwrap();
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&ckpt);
}
