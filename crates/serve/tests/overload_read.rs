//! Overload behavior of the read and write paths: snapshot staleness
//! stays inside the freshness policy across a worker stall, concurrent
//! degraded reads never observe a torn snapshot, and deadline-expired
//! writes are shed before the WAL or engine see them.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use storypivot_gen::{Corpus, CorpusBuilder, GenConfig};
use storypivot_serve::client::{BackoffPolicy, Client};
use storypivot_serve::server::{serve, ServerConfig};
use storypivot_serve::IngestReply;

fn corpus(seed: u64, events: usize) -> Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_seed(seed)
            .with_sources(1)
            .with_target_snippets(events),
    )
    .build()
}

fn register_all(client: &mut Client, corpus: &Corpus) {
    for source in &corpus.sources {
        let got = client.add_source(&source.name, source.kind, source.typical_lag).unwrap();
        assert_eq!(got, source.id);
    }
}

/// Total snippets visible through the served partition.
fn visible_members(client: &mut Client) -> usize {
    client.query_stories().unwrap().iter().map(|s| s.members.len()).sum()
}

/// Sum every sample of a (possibly shard-labeled) counter in a
/// Prometheus-style exposition.
fn metric_total(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .filter(|l| l.starts_with(name) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

/// `snapshot_every_ops` large enough to never trigger on its own: reads
/// go stale while writes land. The moment the worker touches its next
/// job past `snapshot_max_age_ms`, everything applied so far must be
/// published — a stalled-then-resumed worker cannot exceed the bound.
#[test]
fn held_back_writes_republish_within_the_freshness_bound() {
    let cfg = ServerConfig {
        shards: 1,
        align_every: 0,
        snapshot_every_ops: 1_000_000,
        snapshot_max_age_ms: 40,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let corpus = corpus(29, 12);
    register_all(&mut client, &corpus);
    let (first, last) = corpus.snippets.split_at(corpus.snippets.len() - 1);
    for snippet in first {
        client.ingest_backoff(snippet, Default::default()).unwrap();
    }

    // Stall: no jobs arrive while the snapshot goes stale past the bound.
    std::thread::sleep(Duration::from_millis(80));

    // Resume with one more write. The worker must publish the held-back
    // ops (stale past 40ms) *before* applying it, so everything acked
    // before the stall is immediately visible.
    client.ingest_backoff(&last[0], Default::default()).unwrap();
    assert!(
        visible_members(&mut client) >= first.len(),
        "resume must republish every write acked before the stall"
    );

    // Any job past the bound flushes the remainder — a read-only stats
    // probe is enough; no further writes are required.
    std::thread::sleep(Duration::from_millis(80));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let _ = client.stats().unwrap();
        if visible_members(&mut client) == corpus.snippets.len() {
            break;
        }
        assert!(Instant::now() < deadline, "final write never became visible");
        std::thread::sleep(Duration::from_millis(10));
    }

    client.shutdown().unwrap();
    handle.join();
}

/// Readers hammer QUERY_STORIES while writers saturate a depth-1 queue:
/// every response must be an internally consistent snapshot (no member
/// in two stories, visible history never shrinks), and the reads taken
/// while the queue was full must show up in
/// `storypivot_degraded_reads_total`.
#[test]
fn degraded_reads_never_observe_a_torn_snapshot() {
    let cfg = ServerConfig {
        shards: 1,
        queue_depth: 1,
        align_every: 0,
        worker_delay: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();

    let corpus = corpus(31, 45);
    register_all(&mut setup, &corpus);

    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = corpus
        .snippets
        .chunks(corpus.snippets.len() / 3)
        .map(|chunk| {
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let policy = BackoffPolicy { max_attempts: 1_000, ..BackoffPolicy::default() };
                for snippet in &chunk {
                    client.ingest_backoff(snippet, policy).unwrap();
                }
            })
        })
        .collect();

    let reader = {
        let done = done.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut floor = 0usize;
            let mut reads = 0u64;
            while !done.load(Ordering::Relaxed) {
                let stories = client.query_stories().unwrap();
                let mut seen = BTreeSet::new();
                for story in &stories {
                    for m in &story.members {
                        assert!(seen.insert(m.raw()), "snippet {m} appears in two stories");
                    }
                }
                assert!(
                    seen.len() >= floor,
                    "visible history shrank from {floor} to {} members",
                    seen.len()
                );
                floor = seen.len();
                reads += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            reads
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let reads = reader.join().unwrap();
    assert!(reads > 10, "the reader must have raced the writers");

    // With three writers against a depth-1 queue, some reads landed
    // while the queue sat full — the degraded-read counter saw them.
    let exposition = setup.metrics().unwrap();
    assert!(
        metric_total(&exposition, "storypivot_degraded_reads_total") > 0,
        "saturated-queue reads must be counted as degraded"
    );

    setup.shutdown().unwrap();
    handle.join();
}

/// With a 1 ms budget against a 25 ms worker delay every single-snippet
/// ingest expires in queue: the reply is SHED with a retry hint, the
/// engine never sees the snippet, and the shed counter records it.
#[test]
fn expired_work_is_shed_before_it_touches_the_engine() {
    let cfg = ServerConfig {
        shards: 1,
        align_every: 0,
        worker_delay: Duration::from_millis(25),
        deadline_ms: 1,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let corpus = corpus(37, 4);
    register_all(&mut client, &corpus);

    let mut shed = 0u32;
    for snippet in &corpus.snippets {
        match client.ingest(snippet).unwrap() {
            IngestReply::Shed { retry_after_ms } => {
                assert!(retry_after_ms >= 1, "shed replies must carry a retry hint");
                shed += 1;
            }
            other => panic!("expected SHED under an expired budget, got {other:?}"),
        }
    }
    assert_eq!(shed, corpus.snippets.len() as u32);

    // Shed before the engine: nothing was applied, only counted.
    assert_eq!(visible_members(&mut client), 0, "shed writes must not reach the engine");
    let exposition = client.metrics().unwrap();
    assert_eq!(metric_total(&exposition, "storypivot_shed_total"), shed as u64);

    client.shutdown().unwrap();
    handle.join();
}
