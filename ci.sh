#!/usr/bin/env bash
# Offline CI for the storypivot workspace.
#
# The whole point of the zero-dependency substrate is that this script
# passes on a machine with an EMPTY cargo registry and no network. Any
# step that tries to touch crates.io fails the run.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> build (release, all targets)"
cargo build --release --workspace --all-targets

echo "==> tests"
cargo test -q --workspace

echo "==> clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> smoke: bench harness e1 (quick, json artifact)"
SMOKE_DIR="$(mktemp -d)"
PIVOTD_PID=""
REPLICA_PID=""
# If a smoke step dies mid-script, the daemons it spawned must not
# outlive the CI run: kill any live pivotd (leader or replica) before
# sweeping the scratch dir. KILL is safe here — crash recovery is a
# tested path.
cleanup() {
    for pid in "$REPLICA_PID" "$PIVOTD_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
cargo run -p storypivot-bench --bin harness --release -- e1 --quick --json "$SMOKE_DIR/bench"
test -s "$SMOKE_DIR/bench/BENCH_e1.json"

echo "==> smoke: bench harness hotpath (E17 before/after, partition equality asserted in-run)"
# The harness itself asserts the cache-on and cache-off partitions are
# identical; CI just checks the artifact landed with a timing column.
cargo run -p storypivot-bench --bin harness --release -- hotpath --quick --json "$SMOKE_DIR/bench"
test -s "$SMOKE_DIR/bench/BENCH_hotpath.json"
grep -q '"ns/event"' "$SMOKE_DIR/bench/BENCH_hotpath.json"

# Poll a pivotd --port-file until the daemon binds; dies if the daemon does.
wait_port() { # args: port_file pid
    for _ in $(seq 1 100); do
        [ -s "$1" ] && break
        kill -0 "$2" 2>/dev/null || { echo "pivotd died before binding"; exit 1; }
        sleep 0.1
    done
    test -s "$1" || { echo "pivotd never wrote its port file"; exit 1; }
    cat "$1"
}

echo "==> smoke: serve (pivotd + loadgen round trip)"
cargo run -p storypivot-serve --bin pivotd --release -- \
    --addr 127.0.0.1:0 --shards 2 \
    --checkpoint-dir "$SMOKE_DIR/ckpt" --port-file "$SMOKE_DIR/port" &
PIVOTD_PID=$!
PORT="$(wait_port "$SMOKE_DIR/port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --quick --json "$SMOKE_DIR/BENCH_serve.json" \
    --metrics --shutdown > "$SMOKE_DIR/metrics.txt"
# The merged exposition made it over the wire.
grep -q '^storypivot_ingest_total ' "$SMOKE_DIR/metrics.txt"
# The serving-runtime gauges are registered and exported: connection
# count, pipelining depth, and buffer-pool pressure must all be
# present (values vary; the series existing is the contract).
grep -q '^storypivot_connections_open ' "$SMOKE_DIR/metrics.txt"
grep -q '^storypivot_pipeline_depth ' "$SMOKE_DIR/metrics.txt"
grep -q '^storypivot_pool_buffers_outstanding ' "$SMOKE_DIR/metrics.txt"
grep -q '^storypivot_pool_bytes_highwater ' "$SMOKE_DIR/metrics.txt"
# The hot-story-cache hit/miss counters are registered and exported.
grep -q '^storypivot_story_cache_hits_total' "$SMOKE_DIR/metrics.txt"
grep -q '^storypivot_story_cache_misses_total' "$SMOKE_DIR/metrics.txt"
# SHUTDOWN must terminate the daemon gracefully (exit 0) and leave one
# generation-numbered checkpoint per shard.
wait "$PIVOTD_PID"
PIVOTD_PID=""
ls "$SMOKE_DIR"/ckpt/shard0.g*.spvc >/dev/null
ls "$SMOKE_DIR"/ckpt/shard1.g*.spvc >/dev/null
test -s "$SMOKE_DIR/BENCH_serve.json"

echo "==> smoke: connection storm (multiplexed runtime holds 1k sockets)"
# Needs ~2k descriptors client-side plus the daemon's own; skip rather
# than fail on boxes with a tight ulimit.
STORM_CONNS=1000
FD_LIMIT="$(ulimit -n)"
if [ "$FD_LIMIT" != "unlimited" ] && [ "$FD_LIMIT" -lt 2500 ]; then
    echo "    skipped: ulimit -n is $FD_LIMIT (need ~2500 for $STORM_CONNS connections)"
else
    cargo run -p storypivot-serve --bin pivotd --release -- \
        --addr 127.0.0.1:0 --shards 2 --io-workers 2 --idle-timeout-ms 30000 \
        --checkpoint-dir "$SMOKE_DIR/storm-ckpt" --port-file "$SMOKE_DIR/storm-port" &
    PIVOTD_PID=$!
    PORT="$(wait_port "$SMOKE_DIR/storm-port" "$PIVOTD_PID")"
    cargo run -p storypivot-serve --bin loadgen --release -- \
        --addr "127.0.0.1:$PORT" --storm --conns "$STORM_CONNS" --rounds 3 \
        --interval-ms 20 --json "$SMOKE_DIR/BENCH_storm.json"
    cargo run -p storypivot-serve --bin loadgen --release -- \
        --addr "127.0.0.1:$PORT" --query-only --shutdown
    wait "$PIVOTD_PID"
    PIVOTD_PID=""
    test -s "$SMOKE_DIR/BENCH_storm.json"
    grep -q "\"connections\": $STORM_CONNS" "$SMOKE_DIR/BENCH_storm.json"
fi

echo "==> smoke: crash recovery (kill -9, WAL replay must restore the partition)"
CRASH_DIR="$SMOKE_DIR/crash"
mkdir -p "$CRASH_DIR"
cargo run -p storypivot-serve --bin pivotd --release -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 --fsync always \
    --wal-dir "$CRASH_DIR/wal" --checkpoint-dir "$CRASH_DIR/ckpt" \
    --port-file "$CRASH_DIR/port" &
PIVOTD_PID=$!
PORT="$(wait_port "$CRASH_DIR/port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --quick --partition-file "$CRASH_DIR/before.txt"
test -s "$CRASH_DIR/before.txt"
# No drain, no checkpoint, no warning: the journal is all that's left.
kill -9 "$PIVOTD_PID"
wait "$PIVOTD_PID" || true
rm -f "$CRASH_DIR/port"
cargo run -p storypivot-serve --bin pivotd --release -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 --fsync always \
    --wal-dir "$CRASH_DIR/wal" --checkpoint-dir "$CRASH_DIR/ckpt" \
    --port-file "$CRASH_DIR/port" &
PIVOTD_PID=$!
PORT="$(wait_port "$CRASH_DIR/port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --query-only --partition-file "$CRASH_DIR/after.txt" --shutdown
wait "$PIVOTD_PID"
PIVOTD_PID=""
cmp "$CRASH_DIR/before.txt" "$CRASH_DIR/after.txt"

echo "==> smoke: replication (leader + follower, bounded lag, NOT_LEADER wall)"
REPL_DIR="$SMOKE_DIR/repl"
mkdir -p "$REPL_DIR"
cargo run -p storypivot-serve --bin pivotd --release -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 --fsync always \
    --wal-dir "$REPL_DIR/leader-wal" --checkpoint-dir "$REPL_DIR/leader-ckpt" \
    --port-file "$REPL_DIR/leader-port" &
PIVOTD_PID=$!
PORT="$(wait_port "$REPL_DIR/leader-port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --quick --partition-file "$REPL_DIR/leader.txt"
test -s "$REPL_DIR/leader.txt"
cargo run -p storypivot-serve --bin pivotd --release -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 \
    --replica --leader "127.0.0.1:$PORT" \
    --wal-dir "$REPL_DIR/replica-wal" --checkpoint-dir "$REPL_DIR/replica-ckpt" \
    --port-file "$REPL_DIR/replica-port" &
REPLICA_PID=$!
RPORT="$(wait_port "$REPL_DIR/replica-port" "$REPLICA_PID")"
# The follower must answer queries with bounded lag: within ~10 s its
# served partition equals the leader's, byte for byte.
CONVERGED=""
for _ in $(seq 1 50); do
    cargo run -p storypivot-serve --bin loadgen --release -- \
        --addr "127.0.0.1:$RPORT" --query-only --partition-file "$REPL_DIR/replica.txt"
    if cmp -s "$REPL_DIR/leader.txt" "$REPL_DIR/replica.txt"; then
        CONVERGED=1
        break
    fi
    sleep 0.2
done
[ -n "$CONVERGED" ] || { echo "replica never converged to the leader's partition"; exit 1; }
# The follower exports its replication lag in the METRICS exposition.
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$RPORT" --query-only --metrics > "$REPL_DIR/replica-metrics.txt"
grep -q '^storypivot_replica_lag_ops{' "$REPL_DIR/replica-metrics.txt"
# Read fan-out across leader + follower round-robins and reports both.
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --query-only --replicas "127.0.0.1:$RPORT" \
    --queries 200 --json "$REPL_DIR/BENCH_fanout.json"
grep -q "\"targets\"" "$REPL_DIR/BENCH_fanout.json"
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$RPORT" --query-only --shutdown
wait "$REPLICA_PID"
REPLICA_PID=""
cargo run -p storypivot-serve --bin loadgen --release -- \
    --addr "127.0.0.1:$PORT" --query-only --shutdown
wait "$PIVOTD_PID"
PIVOTD_PID=""

echo "==> smoke: chaos (scenario replay + fault injection + crash equivalence)"
# Fault hooks are compiled only into debug binaries (release plans are
# inert by design), so this smoke drives the debug pivotd/loadgen the
# test step already built. The plan tears WAL appends and fails
# checkpoint writes while a flash-crowd scenario replays; every
# rejection is retried, then kill -9 + a clean restart must serve the
# byte-identical partition the faulted daemon acknowledged.
CHAOS_DIR="$SMOKE_DIR/chaos"
mkdir -p "$CHAOS_DIR"
STORYPIVOT_FAULTS="seed=11,wal_enospc=15,wal_short=15,checkpoint=300" \
cargo run -p storypivot-serve --bin pivotd -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 --fsync every:16 \
    --deadline-ms 50 --checkpoint-every-bytes 32768 \
    --wal-dir "$CHAOS_DIR/wal" --checkpoint-dir "$CHAOS_DIR/ckpt" \
    --port-file "$CHAOS_DIR/port" &
PIVOTD_PID=$!
PORT="$(wait_port "$CHAOS_DIR/port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen -- \
    --addr "127.0.0.1:$PORT" --scenario flash_crowd --events 600 --conns 2 \
    --json "$CHAOS_DIR/BENCH_flash.json" --metrics > "$CHAOS_DIR/metrics.txt"
# The degradation ladder is registered and exported: shed and
# degraded-read counters must be present in the merged exposition.
grep -q '^storypivot_shed_total' "$CHAOS_DIR/metrics.txt"
grep -q '^storypivot_degraded_reads_total' "$CHAOS_DIR/metrics.txt"
# The fault plan actually bit: injected journal rejections were
# absorbed and retried by the scenario replay.
grep -q '"rejected_retries": [1-9]' "$CHAOS_DIR/BENCH_flash.json"
cargo run -p storypivot-serve --bin loadgen -- \
    --addr "127.0.0.1:$PORT" --query-only --partition-file "$CHAOS_DIR/before.txt"
test -s "$CHAOS_DIR/before.txt"
kill -9 "$PIVOTD_PID"
wait "$PIVOTD_PID" || true
rm -f "$CHAOS_DIR/port"
# Clean restart, no fault plan: WAL replay (torn appends were repaired
# in place, rejected appends left nothing) rebuilds the partition.
cargo run -p storypivot-serve --bin pivotd -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 --fsync every:16 \
    --wal-dir "$CHAOS_DIR/wal" --checkpoint-dir "$CHAOS_DIR/ckpt" \
    --port-file "$CHAOS_DIR/port" &
PIVOTD_PID=$!
PORT="$(wait_port "$CHAOS_DIR/port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen -- \
    --addr "127.0.0.1:$PORT" --query-only --partition-file "$CHAOS_DIR/after.txt" --shutdown
wait "$PIVOTD_PID"
PIVOTD_PID=""
cmp "$CHAOS_DIR/before.txt" "$CHAOS_DIR/after.txt"
# Retraction storm against a fresh daemon (scenario scripts assume
# fresh source ids), checkpoint faults only so REMOVE_DOC at volume
# runs against a journaling-but-flaky checkpoint path.
STORYPIVOT_FAULTS="seed=4,checkpoint=300" \
cargo run -p storypivot-serve --bin pivotd -- \
    --addr 127.0.0.1:0 --shards 2 --align-every 0 --fsync every:16 \
    --deadline-ms 50 --checkpoint-every-bytes 32768 \
    --wal-dir "$CHAOS_DIR/storm-wal" --checkpoint-dir "$CHAOS_DIR/storm-ckpt" \
    --port-file "$CHAOS_DIR/storm-port" &
PIVOTD_PID=$!
PORT="$(wait_port "$CHAOS_DIR/storm-port" "$PIVOTD_PID")"
cargo run -p storypivot-serve --bin loadgen -- \
    --addr "127.0.0.1:$PORT" --scenario retraction_storm --events 600 --conns 2 \
    --json "$CHAOS_DIR/BENCH_storm_scenario.json"
grep -q '"shed_retries"' "$CHAOS_DIR/BENCH_storm_scenario.json"
# Chaos exit: the trap's kill -9 is the teardown — crash recovery of a
# checkpoint-faulted daemon is a tested path, not a cleanup hazard.

echo "CI OK"
