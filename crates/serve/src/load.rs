//! The load generator: replay a [`storypivot_gen`] corpus against a
//! running server and measure throughput and latency.
//!
//! Snippets are partitioned across M connections *by source* (source id
//! mod M), so each source's stream stays on one connection and arrives
//! at its shard in delivery order — the same ordering guarantee the
//! in-process pipeline has. Each connection paces itself toward the
//! target aggregate rate and absorbs BUSY replies with the client's
//! jittered exponential backoff (seeded per snippet, honoring the
//! server's retry-after hint).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use storypivot_gen::scenario::{ScenarioOp, Script};
use storypivot_gen::Corpus;
use storypivot_substrate::timing::Histogram;
use storypivot_types::{DocId, Error, Result, Snippet, Source, StoryId};

use crate::client::{BackoffPolicy, Client, RetryStats};
use crate::proto::{frame, Request, MAX_FRAME_LEN};

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent connections (sources are split across them).
    pub connections: usize,
    /// Target aggregate ingest rate in events/second (0 = as fast as
    /// possible).
    pub rate: u64,
    /// How many BUSY replies to absorb per snippet before giving up.
    pub max_retries: u32,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            connections: 4,
            rate: 0,
            max_retries: 100,
        }
    }
}

/// What a replay measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Snippets successfully ingested.
    pub events: u64,
    /// BUSY replies absorbed (each one cost a retry round-trip).
    pub busy_retries: u64,
    /// SHED replies absorbed: ingests the server admitted but dropped
    /// past their deadline budget. Counted apart from BUSY because they
    /// cost the server queue residency, not just an admission check.
    pub shed_retries: u64,
    /// Typed rejections absorbed during a scenario replay (e.g. an
    /// injected journal fault failing the append). The server applies
    /// nothing on a rejection — append-before-apply — so the replay
    /// retries the snippet; always zero for [`replay`], which treats
    /// any rejection as fatal.
    pub rejected_retries: u64,
    /// Wall-clock time of the replay.
    pub wall: Duration,
    /// Per-request round-trip latency (nanoseconds).
    pub latency: Histogram,
}

impl LoadReport {
    /// Achieved throughput in events/second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.wall.as_secs_f64()
    }

    /// Median round-trip latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.latency.percentile(0.50) as f64 / 1e3
    }

    /// 95th-percentile round-trip latency in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.latency.percentile(0.95) as f64 / 1e3
    }

    /// 99th-percentile round-trip latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.percentile(0.99) as f64 / 1e3
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} events in {:.2}s → {:.0} ev/s; rtt p50/p95/p99 {:.1}/{:.1}/{:.1} µs; \
             {} busy retries; {} shed retries; {} rejected retries",
            self.events,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.p50_us(),
            self.p95_us(),
            self.p99_us(),
            self.busy_retries,
            self.shed_retries,
            self.rejected_retries,
        )
    }

    /// A JSON object (same shape as the bench harness artifacts).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"events\": {},\n",
                "  \"busy_retries\": {},\n",
                "  \"shed_retries\": {},\n",
                "  \"rejected_retries\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"throughput_ev_per_s\": {:.2},\n",
                "  \"rtt_p50_us\": {:.2},\n",
                "  \"rtt_p95_us\": {:.2},\n",
                "  \"rtt_p99_us\": {:.2}\n",
                "}}"
            ),
            self.events,
            self.busy_retries,
            self.shed_retries,
            self.rejected_retries,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.p50_us(),
            self.p95_us(),
            self.p99_us(),
        )
    }
}

/// Register the corpus's sources (connection 0) and replay its snippet
/// stream over `connections` paced connections.
///
/// The server allocates source ids sequentially from zero against a
/// fresh engine, which matches the corpus's own numbering; a mismatch
/// (server not fresh) is an error.
pub fn replay<A: ToSocketAddrs>(addr: A, corpus: &Corpus, opts: &LoadOptions) -> Result<LoadReport> {
    if opts.connections == 0 {
        return Err(Error::InvalidConfig("loadgen: connections must be >= 1".into()));
    }
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::InvalidConfig("loadgen: address resolved to nothing".into()))?;

    let mut setup = Client::connect(addr)?;
    for source in &corpus.sources {
        let got = setup.add_source(&source.name, source.kind, source.typical_lag)?;
        if got != source.id {
            return Err(Error::InvalidConfig(format!(
                "server allocated source id {got} where the corpus expects {} — \
                 is the server fresh?",
                source.id
            )));
        }
    }

    // Partition by source, preserving delivery order within each lane.
    let lanes = opts.connections;
    let mut per_lane: Vec<Vec<Snippet>> = vec![Vec::new(); lanes];
    for s in &corpus.snippets {
        per_lane[s.source.raw() as usize % lanes].push(s.clone());
    }
    let per_lane_rate = opts.rate as f64 / lanes as f64;

    let start = Instant::now();
    let mut handles = Vec::with_capacity(lanes);
    // BUSY handling: jittered exponential backoff honoring the
    // server's retry-after hint, with a typed error on exhaustion.
    let backoff = BackoffPolicy {
        max_attempts: opts.max_retries.saturating_add(1),
        ..BackoffPolicy::default()
    };
    for lane in per_lane {
        handles.push(std::thread::spawn(move || -> Result<(u64, RetryStats, Histogram)> {
            let mut client = Client::connect(addr)?;
            let mut hist = Histogram::new();
            let mut events = 0u64;
            let mut retries = RetryStats::default();
            let lane_start = Instant::now();
            for (i, snippet) in lane.iter().enumerate() {
                if per_lane_rate > 0.0 {
                    // Pace against the schedule, not the previous send:
                    // event i is due at i / rate seconds.
                    let due = Duration::from_secs_f64(i as f64 / per_lane_rate);
                    let elapsed = lane_start.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                }
                let t = Instant::now();
                let (_, r) = client.ingest_backoff(snippet, backoff)?;
                retries.busy += r.busy;
                retries.shed += r.shed;
                hist.record(t.elapsed().as_nanos() as u64);
                events += 1;
            }
            Ok((events, retries, hist))
        }));
    }

    let mut report = LoadReport {
        events: 0,
        busy_retries: 0,
        shed_retries: 0,
        rejected_retries: 0,
        wall: Duration::ZERO,
        latency: Histogram::new(),
    };
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((events, retries, hist))) => {
                report.events += events;
                report.busy_retries += retries.busy as u64;
                report.shed_retries += retries.shed as u64;
                report.latency.merge(&hist);
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some(Error::Io("loadgen connection thread panicked".into())),
        }
    }
    report.wall = start.elapsed();
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

// ---- chaos scenario replay -------------------------------------------

/// One segment's work, pre-split for the lanes: control ops run on
/// lane 0 with barriers around them so no lane ingests a snippet of a
/// source that is not registered yet, and no document is retracted
/// before every lane has finished the segment's ingests.
struct SegmentPlan {
    rate: u64,
    gap_ms: u64,
    adds: Vec<Source>,
    per_lane: Vec<Vec<Snippet>>,
    removes: Vec<DocId>,
}

/// Replay a compiled chaos [`Script`] against a running server.
///
/// Like [`replay`], snippets are partitioned across `opts.connections`
/// lanes by source id, so each source's stream stays in order. The
/// lanes advance segment by segment behind barriers: lane 0 plays the
/// segment's mid-stream ADD_SOURCE ops (and, after everyone's ingests,
/// its REMOVE_DOC retractions); every lane observes the segment's
/// dormancy gap and paces toward its share of the segment's rate.
pub fn replay_script<A: ToSocketAddrs>(
    addr: A,
    script: &Script,
    opts: &LoadOptions,
) -> Result<LoadReport> {
    if opts.connections == 0 {
        return Err(Error::InvalidConfig("loadgen: connections must be >= 1".into()));
    }
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::InvalidConfig("loadgen: address resolved to nothing".into()))?;

    let mut setup = Client::connect(addr)?;
    for source in &script.sources {
        let got = setup.add_source(&source.name, source.kind, source.typical_lag)?;
        if got != source.id {
            return Err(Error::InvalidConfig(format!(
                "server allocated source id {got} where the script expects {} — \
                 is the server fresh?",
                source.id
            )));
        }
    }

    let lanes = opts.connections;
    let plans: Vec<SegmentPlan> = script
        .segments
        .iter()
        .map(|seg| {
            let mut plan = SegmentPlan {
                rate: seg.rate,
                gap_ms: seg.gap_ms,
                adds: Vec::new(),
                per_lane: vec![Vec::new(); lanes],
                removes: Vec::new(),
            };
            for op in &seg.ops {
                match op {
                    ScenarioOp::AddSource(s) => plan.adds.push(s.clone()),
                    ScenarioOp::Ingest(s) => {
                        plan.per_lane[s.source.raw() as usize % lanes].push(s.clone())
                    }
                    ScenarioOp::RemoveDoc(d) => plan.removes.push(*d),
                }
            }
            plan
        })
        .collect();
    let plans = std::sync::Arc::new(plans);
    let gate = std::sync::Arc::new(std::sync::Barrier::new(lanes));

    let backoff = BackoffPolicy {
        max_attempts: opts.max_retries.saturating_add(1),
        ..BackoffPolicy::default()
    };
    let start = Instant::now();
    let mut handles = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let plans = std::sync::Arc::clone(&plans);
        let gate = std::sync::Arc::clone(&gate);
        handles.push(std::thread::spawn(move || -> Result<(u64, RetryStats, u64, Histogram)> {
            let mut client = Client::connect(addr)?;
            let mut hist = Histogram::new();
            let mut events = 0u64;
            let mut retries = RetryStats::default();
            let mut rejected = 0u64;
            for plan in plans.iter() {
                gate.wait();
                if plan.gap_ms > 0 {
                    std::thread::sleep(Duration::from_millis(plan.gap_ms));
                }
                // Mid-stream registrations land before any lane may
                // ingest the new sources' snippets.
                if lane == 0 {
                    for source in &plan.adds {
                        let got =
                            client.add_source(&source.name, source.kind, source.typical_lag)?;
                        if got != source.id {
                            return Err(Error::InvalidConfig(format!(
                                "server allocated source id {got} where the script expects {}",
                                source.id
                            )));
                        }
                    }
                }
                gate.wait();
                let per_lane_rate = plan.rate as f64 / lanes as f64;
                let seg_start = Instant::now();
                for (i, snippet) in plan.per_lane[lane].iter().enumerate() {
                    if per_lane_rate > 0.0 {
                        let due = Duration::from_secs_f64(i as f64 / per_lane_rate);
                        let elapsed = seg_start.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                    }
                    let t = Instant::now();
                    let mut attempts = 0u32;
                    let r = loop {
                        match client.ingest_backoff(snippet, backoff) {
                            Ok((_, r)) => break r,
                            // A typed rejection (a chaos server failing
                            // the journal append, say) applied nothing —
                            // append-before-apply — so a straight retry
                            // is safe. Bounded, so a dead server still
                            // fails the lane instead of spinning.
                            Err(_) if attempts < 50 => {
                                attempts += 1;
                                rejected += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    };
                    retries.busy += r.busy;
                    retries.shed += r.shed;
                    hist.record(t.elapsed().as_nanos() as u64);
                    events += 1;
                }
                gate.wait();
                // Retractions only after every lane's ingests landed.
                if lane == 0 {
                    for doc in &plan.removes {
                        client.remove_doc(*doc)?;
                    }
                }
            }
            Ok((events, retries, rejected, hist))
        }));
    }

    let mut report = LoadReport {
        events: 0,
        busy_retries: 0,
        shed_retries: 0,
        rejected_retries: 0,
        wall: Duration::ZERO,
        latency: Histogram::new(),
    };
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((events, retries, rejected, hist))) => {
                report.events += events;
                report.busy_retries += retries.busy as u64;
                report.shed_retries += retries.shed as u64;
                report.rejected_retries += rejected;
                report.latency.merge(&hist);
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some(Error::Io("loadgen scenario lane panicked".into())),
        }
    }
    report.wall = start.elapsed();
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

// ---- read fan-out ----------------------------------------------------

/// Options for the read fan-out bench: round-robin QUERY_STORIES
/// across a leader and its follower replicas.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Total QUERY_STORIES round trips to issue (split across threads).
    pub requests: u64,
    /// Concurrent reader threads; each holds one connection per target.
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            requests: 2_000,
            threads: 4,
        }
    }
}

/// Per-target slice of a [`QueryReport`].
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// The target's address, as given.
    pub addr: String,
    /// Round trips this target answered.
    pub requests: u64,
    /// Round-trip latency against this target (nanoseconds).
    pub latency: Histogram,
}

/// What a read fan-out run measured.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// One entry per target, in the order the targets were given.
    pub targets: Vec<TargetReport>,
    /// Total round trips across all targets.
    pub requests: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl QueryReport {
    /// Aggregate achieved throughput in queries/second.
    pub fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.wall.as_secs_f64()
    }

    /// Human-readable summary: one aggregate line plus one per target.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} queries over {} targets in {:.2}s → {:.0} q/s",
            self.requests,
            self.targets.len(),
            self.wall.as_secs_f64(),
            self.qps(),
        );
        for t in &self.targets {
            let _ = write!(
                out,
                "\n  {}: {} reqs; rtt p50/p95/p99 {:.1}/{:.1}/{:.1} µs",
                t.addr,
                t.requests,
                t.latency.percentile(0.50) as f64 / 1e3,
                t.latency.percentile(0.95) as f64 / 1e3,
                t.latency.percentile(0.99) as f64 / 1e3,
            );
        }
        out
    }

    /// A JSON object (same shape as the bench harness artifacts).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            concat!(
                "{{\n",
                "  \"requests\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"qps\": {:.2},\n",
                "  \"targets\": [\n",
            ),
            self.requests,
            self.wall.as_secs_f64(),
            self.qps(),
        );
        for (i, t) in self.targets.iter().enumerate() {
            let _ = write!(
                out,
                concat!(
                    "    {{\"addr\": \"{}\", \"requests\": {}, ",
                    "\"rtt_p50_us\": {:.2}, \"rtt_p95_us\": {:.2}, ",
                    "\"rtt_p99_us\": {:.2}}}{}\n",
                ),
                t.addr,
                t.requests,
                t.latency.percentile(0.50) as f64 / 1e3,
                t.latency.percentile(0.95) as f64 / 1e3,
                t.latency.percentile(0.99) as f64 / 1e3,
                if i + 1 == self.targets.len() { "" } else { "," },
            );
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Issue `opts.requests` QUERY_STORIES round trips round-robined over
/// `targets` (typically the leader plus its replicas), from
/// `opts.threads` concurrent readers, and report aggregate throughput
/// plus per-target round-trip latency.
///
/// Each thread opens its own connection to every target and starts its
/// rotation at a different offset, so the load lands evenly even when
/// the request count doesn't divide cleanly.
pub fn query_fanout(targets: &[String], opts: &QueryOptions) -> Result<QueryReport> {
    if targets.is_empty() || opts.threads == 0 {
        return Err(Error::InvalidConfig(
            "query fan-out: need at least one target and one thread".into(),
        ));
    }
    let start = Instant::now();
    let mut handles = Vec::with_capacity(opts.threads);
    for t in 0..opts.threads {
        let share =
            opts.requests / opts.threads as u64 + u64::from((t as u64) < opts.requests % opts.threads as u64);
        let targets: Vec<String> = targets.to_vec();
        handles.push(std::thread::spawn(move || -> Result<Vec<(u64, Histogram)>> {
            let mut conns = Vec::with_capacity(targets.len());
            for addr in &targets {
                conns.push(Client::connect(addr.as_str())?);
            }
            let mut per_target: Vec<(u64, Histogram)> =
                targets.iter().map(|_| (0, Histogram::new())).collect();
            for i in 0..share {
                let which = (t as u64 + i) as usize % conns.len();
                let at = Instant::now();
                conns[which].query_stories()?;
                per_target[which].1.record(at.elapsed().as_nanos() as u64);
                per_target[which].0 += 1;
            }
            Ok(per_target)
        }));
    }

    let mut report = QueryReport {
        targets: targets
            .iter()
            .map(|addr| TargetReport {
                addr: addr.clone(),
                requests: 0,
                latency: Histogram::new(),
            })
            .collect(),
        requests: 0,
        wall: Duration::ZERO,
    };
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(per_target)) => {
                for (slot, (requests, hist)) in report.targets.iter_mut().zip(per_target) {
                    slot.requests += requests;
                    slot.latency.merge(&hist);
                    report.requests += requests;
                }
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some(Error::Io("query fan-out reader thread panicked".into())),
        }
    }
    report.wall = start.elapsed();
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

// ---- connection storm ------------------------------------------------

/// Options for the many-connection trickle mode: hold `connections`
/// open sockets and send each one a tiny request every `interval`,
/// for `rounds` rounds — the workload shape the multiplexed serving
/// runtime exists for (thread-per-connection dies here first).
#[derive(Debug, Clone)]
pub struct StormOptions {
    /// Sockets to hold open for the whole run.
    pub connections: usize,
    /// Client-side driver threads the sockets are split across.
    pub drivers: usize,
    /// Trickle rounds: every round sends one request per connection.
    pub rounds: usize,
    /// Pacing between rounds (each connection sees one request per
    /// interval). `ZERO` trickles as fast as the drivers can.
    pub interval: Duration,
}

impl Default for StormOptions {
    fn default() -> Self {
        StormOptions {
            connections: 1000,
            drivers: 8,
            rounds: 10,
            interval: Duration::from_millis(100),
        }
    }
}

/// What a connection storm measured.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Connections successfully opened and held.
    pub connections: usize,
    /// Requests completed (round trips).
    pub requests: u64,
    /// Wall-clock time from first connect to last response.
    pub wall: Duration,
    /// Time to open every connection.
    pub connect_wall: Duration,
    /// Per-request round-trip latency (nanoseconds).
    pub latency: Histogram,
}

impl StormReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} conns (opened in {:.2}s), {} reqs in {:.2}s; rtt p50/p95/p99 {:.1}/{:.1}/{:.1} µs",
            self.connections,
            self.connect_wall.as_secs_f64(),
            self.requests,
            self.wall.as_secs_f64(),
            self.latency.percentile(0.50) as f64 / 1e3,
            self.latency.percentile(0.95) as f64 / 1e3,
            self.latency.percentile(0.99) as f64 / 1e3,
        )
    }

    /// A JSON object (same shape as the bench harness artifacts).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"connections\": {},\n",
                "  \"requests\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"connect_wall_secs\": {:.6},\n",
                "  \"rtt_p50_us\": {:.2},\n",
                "  \"rtt_p95_us\": {:.2},\n",
                "  \"rtt_p99_us\": {:.2}\n",
                "}}"
            ),
            self.connections,
            self.requests,
            self.wall.as_secs_f64(),
            self.connect_wall.as_secs_f64(),
            self.latency.percentile(0.50) as f64 / 1e3,
            self.latency.percentile(0.95) as f64 / 1e3,
            self.latency.percentile(0.99) as f64 / 1e3,
        )
    }
}

/// One unbuffered storm lane connection: raw `TcpStream` (no
/// `BufReader`/`BufWriter`), so client-side memory per connection is
/// just the socket — the measurement isolates *server-side* per-
/// connection cost.
fn storm_round_trip(
    stream: &mut TcpStream,
    request: &[u8],
    scratch: &mut Vec<u8>,
) -> Result<()> {
    stream.write_all(request)?;
    let mut head = [0u8; 4];
    stream.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(Error::Codec(format!("storm: bad response frame length {len}")));
    }
    scratch.resize(len as usize, 0);
    stream.read_exact(scratch)?;
    Ok(())
}

/// Open `opts.connections` sockets and trickle tiny requests over all
/// of them. The probe request is `GetStory` on a story id that cannot
/// exist, so every round trip is a real dispatch through a shard queue
/// and back (the typed unknown-story error response), with no server
/// state required and no state mutated.
pub fn conn_storm<A: ToSocketAddrs>(addr: A, opts: &StormOptions) -> Result<StormReport> {
    if opts.connections == 0 || opts.drivers == 0 {
        return Err(Error::InvalidConfig(
            "storm: connections and drivers must be >= 1".into(),
        ));
    }
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::InvalidConfig("storm: address resolved to nothing".into()))?;
    let drivers = opts.drivers.min(opts.connections);
    let request = frame(|b| Request::GetStory(StoryId::new(u32::MAX)).encode(b));

    let start = Instant::now();
    let mut handles = Vec::with_capacity(drivers);
    for d in 0..drivers {
        // Spread the remainder so lane sizes differ by at most one.
        let share = opts.connections / drivers + usize::from(d < opts.connections % drivers);
        let request = request.clone();
        let rounds = opts.rounds;
        let interval = opts.interval;
        handles.push(std::thread::spawn(
            move || -> Result<(usize, u64, Duration, Histogram)> {
                let mut conns = Vec::with_capacity(share);
                for i in 0..share {
                    let stream = TcpStream::connect(addr)?;
                    stream.set_nodelay(true)?;
                    conns.push(stream);
                    // Stagger connects so the listener backlog never
                    // overflows into SYN-retry stalls.
                    if i % 64 == 63 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                let connect_wall = start.elapsed();
                let mut hist = Histogram::new();
                let mut requests = 0u64;
                let mut scratch = Vec::with_capacity(256);
                let trickle_start = Instant::now();
                for round in 0..rounds {
                    if !interval.is_zero() {
                        let due = interval * round as u32;
                        let elapsed = trickle_start.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                    }
                    for stream in &mut conns {
                        let t = Instant::now();
                        storm_round_trip(stream, &request, &mut scratch)?;
                        hist.record(t.elapsed().as_nanos() as u64);
                        requests += 1;
                    }
                }
                Ok((conns.len(), requests, connect_wall, hist))
            },
        ));
    }

    let mut report = StormReport {
        connections: 0,
        requests: 0,
        wall: Duration::ZERO,
        connect_wall: Duration::ZERO,
        latency: Histogram::new(),
    };
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((conns, requests, connect_wall, hist))) => {
                report.connections += conns;
                report.requests += requests;
                report.connect_wall = report.connect_wall.max(connect_wall);
                report.latency.merge(&hist);
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some(Error::Io("storm driver thread panicked".into())),
        }
    }
    report.wall = start.elapsed();
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_and_summary_are_well_formed() {
        let mut latency = Histogram::new();
        for v in [1_000u64, 2_000, 50_000] {
            latency.record(v);
        }
        let r = LoadReport {
            events: 3,
            busy_retries: 1,
            shed_retries: 2,
            rejected_retries: 4,
            wall: Duration::from_millis(30),
            latency,
        };
        assert!(r.throughput() > 99.0 && r.throughput() < 101.0);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"events\": 3"));
        assert!(json.contains("\"busy_retries\": 1"));
        assert!(json.contains("\"shed_retries\": 2"));
        assert!(json.contains("\"rejected_retries\": 4"));
        assert!(r.summary().contains("3 events"));
        assert!(r.summary().contains("2 shed retries"));
        assert!(r.summary().contains("4 rejected retries"));
    }

    #[test]
    fn query_report_json_lists_every_target() {
        let mut latency = Histogram::new();
        latency.record(10_000);
        let r = QueryReport {
            targets: vec![
                TargetReport {
                    addr: "127.0.0.1:7411".into(),
                    requests: 2,
                    latency: latency.clone(),
                },
                TargetReport {
                    addr: "127.0.0.1:7412".into(),
                    requests: 1,
                    latency,
                },
            ],
            requests: 3,
            wall: Duration::from_millis(30),
        };
        assert!(r.qps() > 99.0 && r.qps() < 101.0);
        let json = r.to_json();
        assert!(json.contains("\"requests\": 3"));
        assert!(json.contains("127.0.0.1:7412"));
        // Exactly one separating comma between the two target objects.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(r.summary().contains("2 targets"));
    }

    #[test]
    fn query_fanout_rejects_empty_inputs() {
        assert!(query_fanout(&[], &QueryOptions::default()).is_err());
        let opts = QueryOptions {
            threads: 0,
            ..QueryOptions::default()
        };
        assert!(query_fanout(&["127.0.0.1:1".into()], &opts).is_err());
    }
}
