//! MinHash signatures for Jaccard similarity estimation.
//!
//! A MinHash signature compresses an arbitrary-size set into `k`
//! 64-bit values such that the fraction of agreeing positions between
//! two signatures is an unbiased estimate of the sets' Jaccard
//! similarity, with standard error `≈ 1/√k`.
//!
//! Crucially for StoryPivot, signatures are **mergeable**: the
//! element-wise minimum of two signatures is exactly the signature of
//! the union. A story's sketch is therefore maintained in `O(k)` per
//! added snippet — this is what makes story–story alignment cheap at
//! GDELT scale (paper §2.4).

use crate::hash::HashFamily;

/// A MinHash signature over `u64` items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    sig: Vec<u64>,
}

impl MinHash {
    /// The empty-set signature (all positions at `u64::MAX`) for a
    /// family of `k` functions.
    pub fn empty(k: usize) -> Self {
        MinHash {
            sig: vec![u64::MAX; k],
        }
    }

    /// Build a signature from a set of items.
    pub fn from_items<I: IntoIterator<Item = u64>>(family: &HashFamily, items: I) -> Self {
        let mut mh = Self::empty(family.len());
        for item in items {
            mh.insert(family, item);
        }
        mh
    }

    /// Signature length `k`.
    pub fn k(&self) -> usize {
        self.sig.len()
    }

    /// Whether no item has ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.sig.iter().all(|&v| v == u64::MAX)
    }

    /// Fold one item into the signature.
    pub fn insert(&mut self, family: &HashFamily, item: u64) {
        debug_assert_eq!(family.len(), self.sig.len());
        for (i, slot) in self.sig.iter_mut().enumerate() {
            let h = family.hash(i, item);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Merge `other` into `self`: afterwards `self` is the signature of
    /// the union of the underlying sets.
    pub fn merge(&mut self, other: &MinHash) {
        debug_assert_eq!(self.sig.len(), other.sig.len());
        for (a, &b) in self.sig.iter_mut().zip(&other.sig) {
            if b < *a {
                *a = b;
            }
        }
    }

    /// Estimate the Jaccard similarity of the underlying sets.
    ///
    /// Returns 0.0 when either signature is empty (an empty story has no
    /// similarity evidence) and panics in debug builds on mismatched `k`.
    pub fn estimate_jaccard(&self, other: &MinHash) -> f64 {
        debug_assert_eq!(self.sig.len(), other.sig.len());
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let agree = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|&(a, b)| a == b)
            .count();
        agree as f64 / self.sig.len() as f64
    }

    /// Raw signature words (for codecs).
    pub fn words(&self) -> &[u64] {
        &self.sig
    }

    /// Rebuild from raw signature words.
    pub fn from_words(words: Vec<u64>) -> Self {
        MinHash { sig: words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(k: usize) -> HashFamily {
        HashFamily::new(0xABCD, k)
    }

    fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
        use std::collections::HashSet;
        let sa: HashSet<u64> = a.iter().copied().collect();
        let sb: HashSet<u64> = b.iter().copied().collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    #[test]
    fn identical_sets_estimate_one() {
        let f = family(64);
        let a = MinHash::from_items(&f, 0..100);
        let b = MinHash::from_items(&f, 0..100);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let f = family(128);
        let a = MinHash::from_items(&f, 0..100);
        let b = MinHash::from_items(&f, 1000..1100);
        assert!(a.estimate_jaccard(&b) < 0.1);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let f = family(256);
        // Overlapping ranges with known Jaccard 50/150 = 1/3.
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (50..150).collect();
        let ma = MinHash::from_items(&f, a.iter().copied());
        let mb = MinHash::from_items(&f, b.iter().copied());
        let exact = exact_jaccard(&a, &b);
        let est = ma.estimate_jaccard(&mb);
        // k=256 → σ ≈ 1/16 ≈ 0.063; allow 4σ.
        assert!(
            (est - exact).abs() < 0.25,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn merge_equals_union_signature() {
        let f = family(64);
        let mut a = MinHash::from_items(&f, 0..50);
        let b = MinHash::from_items(&f, 25..80);
        let union = MinHash::from_items(&f, 0..80);
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn empty_signature_estimates_zero() {
        let f = family(32);
        let e = MinHash::empty(32);
        let a = MinHash::from_items(&f, 0..10);
        assert_eq!(e.estimate_jaccard(&a), 0.0);
        assert_eq!(e.estimate_jaccard(&e), 0.0);
        assert!(e.is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn insert_is_order_independent() {
        let f = family(64);
        let mut a = MinHash::empty(64);
        for i in [5u64, 1, 9, 3] {
            a.insert(&f, i);
        }
        let mut b = MinHash::empty(64);
        for i in [3u64, 9, 1, 5] {
            b.insert(&f, i);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn words_round_trip() {
        let f = family(16);
        let a = MinHash::from_items(&f, 0..10);
        let b = MinHash::from_words(a.words().to_vec());
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_items_do_not_change_signature() {
        let f = family(32);
        let a = MinHash::from_items(&f, [1u64, 2, 3]);
        let b = MinHash::from_items(&f, [1u64, 2, 3, 3, 2, 1, 1]);
        assert_eq!(a, b);
    }
}
