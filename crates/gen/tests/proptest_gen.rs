//! Property tests for the corpus generator: every corpus, under any
//! reasonable parameterization, must satisfy the structural contracts
//! the rest of the system relies on.

use storypivot_gen::{CorpusBuilder, GenConfig};
use storypivot_substrate::prop;
use storypivot_substrate::rng::{RngExt, StdRng};

fn arb_config(rng: &mut StdRng) -> GenConfig {
    GenConfig {
        seed: rng.random(),
        sources: rng.random_range(2u32..6),
        entities: rng.random_range(20u32..120),
        terms: rng.random_range(50u32..300),
        stories: rng.random_range(2u32..15),
        events_per_story: rng.random_range(3.0f64..10.0),
        drift: rng.random_range(0.0f64..0.5),
        coverage: rng.random_range(0.3f64..1.0),
        split_prob: rng.random_range(0.0f64..0.5),
        merge_prob: rng.random_range(0.0f64..0.5),
        ..GenConfig::default()
    }
}

#[test]
fn corpora_satisfy_structural_contracts() {
    prop::run(48, |rng| {
        let cfg = arb_config(rng);
        let corpus = CorpusBuilder::new(cfg.clone()).build();

        // Delivery order is monotone in delivery time by construction:
        // snippet ids are positional.
        for (i, s) in corpus.snippets.iter().enumerate() {
            assert_eq!(s.id.raw() as usize, i);
            // Every snippet references a registered source.
            assert!(s.source.raw() < cfg.sources);
            // Every snippet is labelled.
            assert!(corpus.truth.label_of(s.id).is_some());
            // Content ids point into the catalogs.
            for e in s.entities().keys() {
                assert!(e.raw() < cfg.entities);
            }
            for t in s.terms().keys() {
                assert!(t.raw() < cfg.terms);
            }
            // Event timestamps stay near the configured period (jitter
            // and lineage can spill slightly past the end).
            assert!(s.timestamp >= cfg.start - cfg.timestamp_jitter);
            assert!(
                s.timestamp <= cfg.end() + cfg.timestamp_jitter,
                "timestamp {} beyond end {}",
                s.timestamp,
                cfg.end()
            );
        }

        // Determinism.
        let again = CorpusBuilder::new(cfg).build();
        assert_eq!(corpus.snippets, again.snippets);
    });
}

#[test]
fn truth_clusters_partition_the_corpus() {
    prop::run(48, |rng| {
        let cfg = arb_config(rng);
        let corpus = CorpusBuilder::new(cfg).build();
        let clusters = corpus.truth.clusters();
        let total: usize = clusters.values().map(Vec::len).sum();
        assert_eq!(total, corpus.len());
        let mut seen = std::collections::HashSet::new();
        for members in clusters.values() {
            for &m in members {
                assert!(seen.insert(m), "snippet {m} in two true clusters");
            }
        }
    });
}
