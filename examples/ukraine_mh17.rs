//! The paper's running example end to end: raw articles about the MH17
//! downing are extracted, identified, aligned, refined, and every demo
//! module (Figures 3–6) is rendered. Afterwards the interactive
//! add/remove-document exploration of §4.2.1 is exercised.
//!
//! ```text
//! cargo run --example ukraine_mh17
//! ```

use storypivot::demo::mh17::Mh17Demo;
use storypivot::demo::modules;
use storypivot::demo::names::PipelineNames;

fn main() {
    // Extract all twelve curated articles, identify, align, refine.
    let mut demo = Mh17Demo::build();
    let ingested = vec![true; demo.len()];

    // Figure 3 — document selection.
    println!(
        "{}",
        modules::document_selection(&demo.pivot, &demo.documents, &ingested)
    );

    // Figure 4 — story overview across sources.
    {
        let names = PipelineNames(&demo.pipeline);
        println!("{}", modules::story_overview(&demo.pivot, &names));
    }

    // Figure 5 — stories per source (the identification view).
    {
        let names = PipelineNames(&demo.pipeline);
        println!("{}", modules::stories_per_source(&demo.pivot, demo.nyt, &names));
        let crash = demo.crash_snippet().unwrap();
        println!("{}", modules::snippet_information(&demo.pivot, crash, &names));
    }

    // Figure 6 — snippets per story (the alignment view).
    let crash_global = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
    {
        let names = PipelineNames(&demo.pipeline);
        println!("{}", modules::snippets_per_story(&demo.pivot, crash_global, &names));
    }

    // §4.2.1 — interactive exploration: remove the WSJ crash article and
    // watch the story lose its cross-source corroboration on July 17.
    println!("=== Interactive: removing the WSJ crash article (doc 7) ===");
    let before = demo
        .pivot
        .alignment()
        .unwrap()
        .global_story(crash_global)
        .map(|g| (g.len(), g.aligning().count()))
        .unwrap();
    demo.remove_document(7).expect("doc 7 was ingested");
    demo.recompute();
    let crash_global_now = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
    let after = demo
        .pivot
        .alignment()
        .unwrap()
        .global_story(crash_global_now)
        .map(|g| (g.len(), g.aligning().count()))
        .unwrap();
    println!(
        "crash story: {} snippets / {} aligning  ->  {} snippets / {} aligning",
        before.0, before.1, after.0, after.1
    );

    println!("\n=== Interactive: re-adding the article ===");
    demo.add_document(7).expect("re-add");
    demo.recompute();
    let crash_global_final = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
    let restored = demo
        .pivot
        .alignment()
        .unwrap()
        .global_story(crash_global_final)
        .map(|g| (g.len(), g.aligning().count()))
        .unwrap();
    println!(
        "crash story restored: {} snippets / {} aligning",
        restored.0, restored.1
    );
    assert_eq!(restored.0, before.0, "re-adding restores the story");
}
