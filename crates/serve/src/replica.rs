//! WAL-shipped follower replicas.
//!
//! `pivotd --leader <addr>` turns a server into a read-only follower:
//! it serves QUERY_STORIES/GET_STORY from its own published snapshots
//! (see [`crate::snapshot`]) and answers every write with a NOT_LEADER
//! redirect, while one *puller* thread per shard tails the leader over
//! the replication opcodes in [`crate::proto`]:
//!
//! 1. **Catch-up.** The puller asks its local shard worker where its
//!    durable copy ends (an empty `ReplApply` probe returns the
//!    checkpoint generation plus the local WAL length). Because the
//!    follower appends the leader's record payloads through the same
//!    deterministic framing, its WAL is byte-identical to the
//!    leader's, and "local WAL length" *is* the leader offset already
//!    replicated — the cursor survives restarts with zero bookkeeping.
//! 2. **Subscribe.** `REPL_SUBSCRIBE {shard, generation, wal_offset}`
//!    polls the leader. A matching generation yields a `REPL_FRAME` of
//!    whole WAL records from the offset; a stale generation yields a
//!    `REPL_CHECKPOINT` carrying the leader's newest checkpoint bytes
//!    verbatim, which the follower installs before tailing again from
//!    offset zero.
//! 3. **Apply.** Records are appended to the local WAL and replayed
//!    through the idempotent `core::oplog` path, so overlap from a
//!    resubscribe (or replay after a crash) is a no-op.
//!
//! Lag is exported per shard as `storypivot_replica_lag_ops` and
//! `storypivot_replica_lag_bytes` gauges in the METRICS exposition,
//! and reconnect attempts as `storypivot_replica_reconnects`. Pullers
//! reconnect with capped, jittered exponential backoff while the
//! leader is away — jitter keeps a fleet of shard pullers from
//! stampeding a recovering leader in lockstep — and exit when the
//! replica itself is shut down.

use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

use storypivot_substrate::fault::FaultHook;
use storypivot_substrate::metrics::Gauge;
use storypivot_substrate::queue::Bounded;

use crate::client::{Client, ReplDelivery};
use crate::server::{Job, ReplAck, ReplCursor, Shared};

/// How long a caught-up puller sleeps between polls.
const POLL_IDLE: Duration = Duration::from_millis(25);

/// Read/write timeout on the leader connection, so a dead leader (or
/// a replica shutdown) never wedges a puller in a blocking read.
const IO_TIMEOUT: Duration = Duration::from_millis(1000);

/// Everything one shard's puller thread needs, assembled by
/// `server::serve` when `ServerConfig::leader` is set.
pub(crate) struct PullerCtx {
    pub(crate) shard: usize,
    pub(crate) leader: String,
    pub(crate) queue: Bounded<Job>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) lag_ops: Gauge,
    pub(crate) lag_bytes: Gauge,
    /// Reconnect attempts to the leader (the initial connection is not
    /// counted); failed attempts count too.
    pub(crate) reconnects: Gauge,
    /// Debug/test-gated `repl_drop` fault: when it fires, the puller
    /// drops its leader connection mid-tail and goes back through the
    /// reconnect path, exercising cursor re-probing under churn.
    pub(crate) drop_fault: FaultHook,
}

impl PullerCtx {
    /// Hand a replication job to the local shard worker and wait for
    /// the cursor it reached. `None` means the shard is gone (queue
    /// closed or worker dead) and the puller should exit; an apply
    /// error is surfaced as `Some(Err(..))` for the caller to back off
    /// on.
    fn submit(
        &self,
        make: impl FnOnce(ReplAck) -> Job,
    ) -> Option<storypivot_types::Result<ReplCursor>> {
        let (tx, rx) = sync_channel(1);
        if self.queue.push(make(tx)).is_err() {
            return None; // shutting down
        }
        rx.recv().ok()
    }

    /// Where the local durable copy ends (empty apply = cursor probe).
    fn local_cursor(&self) -> Option<ReplCursor> {
        match self.submit(|ack| Job::ReplApply {
            records: Vec::new(),
            ack,
        })? {
            Ok(cursor) => Some(cursor),
            Err(e) => {
                eprintln!("pivotd: replica shard {}: cursor probe failed: {e}", self.shard);
                None
            }
        }
    }
}

/// One splitmix64 step: the deterministic jitter source for reconnect
/// backoff (seeded per shard so pullers spread out without sharing
/// state).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Jitter a nominal backoff into `[delay/2, delay)`: half the delay is
/// kept so backoff still backs off, the other half is randomized so no
/// two pullers retry on the same beat.
fn jittered(delay_ms: u64, state: &mut u64) -> u64 {
    let half = (delay_ms / 2).max(1);
    half + splitmix64(state) % half
}

/// Body of one `pivot-repl-{i}` thread: bootstrap-or-tail the leader
/// until the replica shuts down.
pub(crate) fn run_puller(mut ctx: PullerCtx) {
    let Some(mut cursor) = ctx.local_cursor() else { return };
    let mut backoff_ms = 50u64;
    let mut jitter_state = 0x5bd1_e995u64 ^ ((ctx.shard as u64) << 32);
    let mut connects = 0u64;
    'reconnect: while !ctx.shared.is_done() {
        if connects > 0 {
            ctx.reconnects.add(1);
        }
        connects += 1;
        let mut client = match Client::connect(&ctx.leader) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "pivotd: replica shard {}: leader {} unreachable: {e}",
                    ctx.shard, ctx.leader
                );
                std::thread::sleep(Duration::from_millis(jittered(backoff_ms, &mut jitter_state)));
                backoff_ms = (backoff_ms * 2).min(2000);
                continue;
            }
        };
        if let Err(e) = client.set_io_timeout(Some(IO_TIMEOUT)) {
            eprintln!("pivotd: replica shard {}: socket timeout: {e}", ctx.shard);
        }
        backoff_ms = 50;
        loop {
            if ctx.shared.is_done() {
                break 'reconnect;
            }
            if ctx.drop_fault.fire() {
                eprintln!(
                    "pivotd: replica shard {}: injected fault: dropping leader connection",
                    ctx.shard
                );
                continue 'reconnect;
            }
            let delivery =
                match client.repl_subscribe(ctx.shard as u32, cursor.generation, cursor.wal_len) {
                    Ok(d) => d,
                    Err(e) => {
                        if !ctx.shared.is_done() {
                            eprintln!(
                                "pivotd: replica shard {}: subscribe failed ({e}); reconnecting",
                                ctx.shard
                            );
                            std::thread::sleep(Duration::from_millis(100));
                        }
                        continue 'reconnect;
                    }
                };
            match delivery {
                ReplDelivery::Frame {
                    leader_wal_len,
                    leader_ops,
                    records,
                    ..
                } => {
                    if !records.is_empty() {
                        match ctx.submit(|ack| Job::ReplApply { records, ack }) {
                            Some(Ok(c)) => cursor = c,
                            Some(Err(e)) => {
                                // Partial appends may have moved the
                                // WAL; re-probe instead of guessing.
                                eprintln!(
                                    "pivotd: replica shard {}: apply failed: {e}",
                                    ctx.shard
                                );
                                std::thread::sleep(Duration::from_millis(500));
                                match ctx.local_cursor() {
                                    Some(c) => cursor = c,
                                    None => break 'reconnect,
                                }
                            }
                            None => break 'reconnect,
                        }
                    }
                    ctx.lag_ops
                        .set(leader_ops.saturating_sub(cursor.ops) as i64);
                    ctx.lag_bytes
                        .set(leader_wal_len.saturating_sub(cursor.wal_len) as i64);
                    if cursor.wal_len >= leader_wal_len {
                        std::thread::sleep(POLL_IDLE);
                    }
                }
                ReplDelivery::Checkpoint {
                    generation,
                    checkpoint,
                } => {
                    match ctx.submit(|ack| Job::ReplBootstrap {
                        generation,
                        checkpoint,
                        ack,
                    }) {
                        Some(Ok(c)) => cursor = c,
                        Some(Err(e)) => {
                            eprintln!(
                                "pivotd: replica shard {}: bootstrap failed: {e}",
                                ctx.shard
                            );
                            std::thread::sleep(Duration::from_millis(500));
                        }
                        None => break 'reconnect,
                    }
                }
            }
        }
    }
}
