//! Pre-registered engine metric handles.
//!
//! [`EngineMetrics`] bundles every counter and duration histogram the
//! engine records on its hot paths — identification, alignment,
//! refinement, maintenance, checkpointing — as cheap detached handles
//! from a [`storypivot_substrate::metrics::Registry`]. The default is
//! fully detached (every operation is a no-op costing one `None`
//! branch), so the engine pays for observability only when a registry
//! is attached via [`crate::pivot::StoryPivot::set_metrics`].
//!
//! Counter semantics are shard-invariant: every name here counts
//! per-source work, so summing the registries of N shard engines
//! yields exactly the values one unsharded engine would report on the
//! same corpus. The serving layer's `METRICS` opcode relies on this
//! when it merges per-shard snapshots into one exposition.

use storypivot_substrate::metrics::{Counter, HistogramMetric, Registry};

/// Handles for every engine-side metric family (see module docs).
#[derive(Clone, Default)]
pub struct EngineMetrics {
    /// `storypivot_ingest_total` — snippets ingested.
    pub ingest_total: Counter,
    /// `storypivot_identify_compared_total` — candidate snippet
    /// comparisons performed (the candidate-scan width of E1).
    pub identify_compared_total: Counter,
    /// `storypivot_identify_assigned_total` — snippets that joined an
    /// existing story.
    pub identify_assigned_total: Counter,
    /// `storypivot_identify_new_story_total` — snippets that opened a
    /// new story.
    pub identify_new_story_total: Counter,
    /// `storypivot_identify_merge_total` — stories absorbed by merge
    /// evidence.
    pub identify_merge_total: Counter,
    /// `storypivot_identify_split_total` — stories split by the
    /// maintenance pass.
    pub identify_split_total: Counter,
    /// `storypivot_story_cache_hits_total` — hot-story-cache hits
    /// (candidate stories whose windowed fold was reused or extended).
    pub story_cache_hits_total: Counter,
    /// `storypivot_story_cache_misses_total` — hot-story-cache misses
    /// (candidate stories folded from scratch).
    pub story_cache_misses_total: Counter,
    /// `storypivot_maintenance_runs_total` — merge/split maintenance
    /// passes executed.
    pub maintenance_runs_total: Counter,
    /// `storypivot_align_runs_total` — alignment passes (full or
    /// incremental).
    pub align_runs_total: Counter,
    /// `storypivot_align_pairs_total` — candidate story pairs scored.
    pub align_pairs_total: Counter,
    /// `storypivot_refine_moves_total` — snippets moved by refinement.
    pub refine_moves_total: Counter,
    /// `storypivot_refine_rounds_total` — refinement rounds executed.
    pub refine_rounds_total: Counter,
    /// `storypivot_identify_duration_ns` — per-snippet identification
    /// time.
    pub identify_duration: HistogramMetric,
    /// `storypivot_align_duration_ns` — per-pass alignment time.
    pub align_duration: HistogramMetric,
    /// `storypivot_refine_duration_ns` — per-call refinement time
    /// (includes the re-alignments it triggers).
    pub refine_duration: HistogramMetric,
    /// `storypivot_checkpoint_save_duration_ns` — checkpoint
    /// serialization time.
    pub checkpoint_save_duration: HistogramMetric,
    /// `storypivot_checkpoint_load_duration_ns` — checkpoint
    /// deserialization time.
    pub checkpoint_load_duration: HistogramMetric,
}

impl std::fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineMetrics").finish_non_exhaustive()
    }
}

impl EngineMetrics {
    /// Register every engine family in `registry` and return live
    /// handles (no-op handles when the registry is disabled).
    pub fn register(registry: &Registry) -> Self {
        EngineMetrics {
            ingest_total: registry
                .counter("storypivot_ingest_total", "Snippets ingested."),
            identify_compared_total: registry.counter(
                "storypivot_identify_compared_total",
                "Candidate snippet comparisons performed during identification.",
            ),
            identify_assigned_total: registry.counter(
                "storypivot_identify_assigned_total",
                "Snippets assigned to an existing story.",
            ),
            identify_new_story_total: registry.counter(
                "storypivot_identify_new_story_total",
                "Snippets that opened a new story.",
            ),
            identify_merge_total: registry.counter(
                "storypivot_identify_merge_total",
                "Stories absorbed into another story by merge evidence.",
            ),
            identify_split_total: registry.counter(
                "storypivot_identify_split_total",
                "Stories split into fragments by the maintenance pass.",
            ),
            story_cache_hits_total: registry.counter(
                "storypivot_story_cache_hits_total",
                "Hot-story-cache hits during identification scoring.",
            ),
            story_cache_misses_total: registry.counter(
                "storypivot_story_cache_misses_total",
                "Hot-story-cache misses during identification scoring.",
            ),
            maintenance_runs_total: registry.counter(
                "storypivot_maintenance_runs_total",
                "Merge/split maintenance passes executed.",
            ),
            align_runs_total: registry.counter(
                "storypivot_align_runs_total",
                "Alignment passes executed (full or incremental).",
            ),
            align_pairs_total: registry.counter(
                "storypivot_align_pairs_total",
                "Candidate story pairs scored by the aligner.",
            ),
            refine_moves_total: registry.counter(
                "storypivot_refine_moves_total",
                "Snippets moved between stories by refinement.",
            ),
            refine_rounds_total: registry.counter(
                "storypivot_refine_rounds_total",
                "Refinement rounds executed.",
            ),
            identify_duration: registry.histogram(
                "storypivot_identify_duration_ns",
                "Per-snippet identification time in nanoseconds.",
            ),
            align_duration: registry.histogram(
                "storypivot_align_duration_ns",
                "Per-pass alignment time in nanoseconds.",
            ),
            refine_duration: registry.histogram(
                "storypivot_refine_duration_ns",
                "Per-call refinement time in nanoseconds.",
            ),
            checkpoint_save_duration: registry.histogram(
                "storypivot_checkpoint_save_duration_ns",
                "Checkpoint serialization time in nanoseconds.",
            ),
            checkpoint_load_duration: registry.histogram(
                "storypivot_checkpoint_load_duration_ns",
                "Checkpoint deserialization time in nanoseconds.",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handles_are_detached() {
        let m = EngineMetrics::default();
        m.ingest_total.inc();
        assert_eq!(m.ingest_total.get(), 0);
        m.identify_duration.record(5);
        assert_eq!(m.identify_duration.count(), 0);
    }

    #[test]
    fn registered_handles_share_the_registry() {
        let registry = Registry::new();
        let a = EngineMetrics::register(&registry);
        let b = EngineMetrics::register(&registry);
        a.ingest_total.add(2);
        b.ingest_total.inc();
        assert_eq!(a.ingest_total.get(), 3);
        let text = registry.render();
        assert!(text.contains("storypivot_ingest_total 3"));
    }
}
