//! Dynamic, out-of-order ingestion (paper §2.4): a [`DynamicPivot`]
//! consumes the corpus in *delivery* order — publication lag means event
//! timestamps arrive scrambled — re-aligning incrementally every 200
//! snippets and printing live story counts.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use storypivot::core::config::PivotConfig;
use storypivot::core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::types::DAY;

fn main() {
    let corpus = CorpusBuilder::new(
        GenConfig::default()
            .with_sources(8)
            .with_target_snippets(2_000),
    )
    .build();
    println!(
        "streaming {} snippets (inversion fraction {:.2} — the stream is genuinely out of order)",
        corpus.len(),
        corpus.inversion_fraction()
    );

    let mut dp = DynamicPivot::new(
        PivotConfig::temporal(14 * DAY),
        PipelinePolicy {
            align_every: 200,
            align_every_event_secs: None,
            refine_on_align: false,
        },
    );
    for src in &corpus.sources {
        dp.pivot_mut()
            .add_source_with_lag(src.name.clone(), src.kind, src.typical_lag);
    }

    let mut late = 0usize;
    let mut last_seen = storypivot::types::Timestamp::MIN;
    for (i, s) in corpus.snippets.iter().enumerate() {
        if s.timestamp < last_seen {
            late += 1;
        }
        last_seen = last_seen.max(s.timestamp);
        dp.ingest(s.clone()).expect("valid snippet");
        if (i + 1) % 500 == 0 {
            println!(
                "after {:>5} snippets: {:>4} per-source stories, {:>4} global stories, {} arrived late",
                i + 1,
                dp.pivot().story_count(),
                dp.pivot().global_stories().len(),
                late,
            );
        }
    }

    let moves = dp.flush();
    println!(
        "\nfinal: {} per-source stories, {} global stories ({} cross-source), {} refinement moves",
        dp.pivot().story_count(),
        dp.pivot().global_stories().len(),
        dp.pivot()
            .alignment()
            .unwrap()
            .cross_source_stories()
            .count(),
        moves,
    );
    println!("automatic incremental alignments along the way: {}", dp.auto_align_count());
}
