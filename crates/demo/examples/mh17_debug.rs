use storypivot_core::sim::SimWeights;
use storypivot_demo::mh17::Mh17Demo;

fn main() {
    let demo = Mh17Demo::build();
    let w = SimWeights::default();
    let store = demo.pivot.store();
    let n = demo.len();
    println!("assignments:");
    for i in 0..n {
        let sid = demo.snippet_of_doc(i).unwrap();
        let sn = store.get(sid).unwrap();
        println!("  doc{i:<2} {sid} story={:?} global={:?} type={} title={}",
            demo.pivot.story_of(sid), demo.pivot.global_of(sid), sn.content.event_type, demo.documents[i].title);
    }
    println!("pairwise sims (x10, row=doc, col=doc):");
    print!("     ");
    for j in 0..n { print!("{j:>4}"); }
    println!();
    for i in 0..n {
        print!("{i:>4}:");
        let a = store.get(demo.snippet_of_doc(i).unwrap()).unwrap();
        for j in 0..n {
            let b = store.get(demo.snippet_of_doc(j).unwrap()).unwrap();
            print!("{:>4.0}", w.snippet_sim(a, b) * 100.0);
        }
        println!();
    }
}
