//! The Porter stemming algorithm (Porter, 1980).
//!
//! Maps inflected English words to a common stem so that `investigates`,
//! `investigated`, `investigating`, and `investigation` all compare equal
//! as description terms. This is the classic rule-based algorithm,
//! implemented in full (steps 1a–5b) over ASCII; non-ASCII words are
//! returned unchanged.

/// Stem a lowercase word.
///
/// ```
/// use storypivot_text::porter_stem;
/// assert_eq!(porter_stem("investigation"), "investig");
/// assert_eq!(porter_stem("crashed"), "crash");
/// assert_eq!(porter_stem("flying"), "fly");
/// assert_eq!(porter_stem("stories"), "stori");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The buffer only ever shrinks or has ASCII appended, so this is valid UTF-8.
    String::from_utf8(s.b).expect("stemmer preserves ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Whether the letter at `i` is a consonant (Porter's definition:
    /// `y` is a consonant at position 0 or after a vowel).
    fn is_cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_cons(i - 1),
            _ => true,
        }
    }

    /// The measure `m` of the first `len` letters: the number of
    /// vowel–consonant sequences in `[C](VC)^m[V]`.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < len && self.is_cons(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < len && !self.is_cons(i) {
                i += 1;
            }
            if i >= len {
                return m;
            }
            // Skip consonants: one VC sequence completed.
            while i < len && self.is_cons(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Whether the first `len` letters contain a vowel (`*v*`).
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_cons(i))
    }

    /// Whether the first `len` letters end with a double consonant (`*d`).
    fn ends_double_cons(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_cons(len - 1)
    }

    /// Whether the first `len` letters end consonant–vowel–consonant,
    /// where the final consonant is not `w`, `x`, or `y` (`*o`).
    fn ends_cvc(&self, len: usize) -> bool {
        len >= 3
            && self.is_cons(len - 3)
            && !self.is_cons(len - 2)
            && self.is_cons(len - 1)
            && !matches!(self.b[len - 1], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    /// Length of the stem when `suffix` is removed.
    fn stem_len(&self, suffix: &str) -> usize {
        self.b.len() - suffix.len()
    }

    /// Replace `suffix` with `replacement` unconditionally (caller has
    /// already checked `ends_with`).
    fn set_suffix(&mut self, suffix: &str, replacement: &str) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// If the word ends with `suffix` and the remaining stem has
    /// `measure > threshold`, replace the suffix. Returns whether the
    /// suffix *matched* (even if the condition failed), which ends rule
    /// scanning for the current step.
    fn replace_if_m(&mut self, suffix: &str, replacement: &str, threshold: usize) -> bool {
        if !self.ends_with(suffix) {
            return false;
        }
        let stem = self.stem_len(suffix);
        if self.measure(stem) > threshold {
            self.set_suffix(suffix, replacement);
        }
        true
    }

    /// Step 1a: plurals. `sses→ss`, `ies→i`, `ss→ss`, `s→∅`.
    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.set_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.set_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // keep
        } else if self.ends_with("s") {
            self.set_suffix("s", "");
        }
    }

    /// Step 1b: `-ed` / `-ing`, with cleanup of the exposed stem.
    fn step1b(&mut self) {
        if self.ends_with("eed") {
            if self.measure(self.stem_len("eed")) > 0 {
                self.set_suffix("eed", "ee");
            }
            return;
        }
        let removed = if self.ends_with("ed") && self.has_vowel(self.stem_len("ed")) {
            self.set_suffix("ed", "");
            true
        } else if self.ends_with("ing") && self.has_vowel(self.stem_len("ing")) {
            self.set_suffix("ing", "");
            true
        } else {
            false
        };
        if !removed {
            return;
        }
        if self.ends_with("at") {
            self.set_suffix("at", "ate");
        } else if self.ends_with("bl") {
            self.set_suffix("bl", "ble");
        } else if self.ends_with("iz") {
            self.set_suffix("iz", "ize");
        } else if self.ends_double_cons(self.b.len())
            && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
        {
            self.b.pop();
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    /// Step 1c: terminal `y` → `i` when the stem has a vowel.
    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel(self.stem_len("y")) {
            self.set_suffix("y", "i");
        }
    }

    /// Step 2: double suffixes, `m > 0`.
    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
            ("logi", "log"),
        ];
        for &(suffix, replacement) in RULES {
            if self.replace_if_m(suffix, replacement, 0) {
                return;
            }
        }
    }

    /// Step 3: `-ic-`, `-full`, `-ness` etc., `m > 0`.
    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for &(suffix, replacement) in RULES {
            if self.replace_if_m(suffix, replacement, 0) {
                return;
            }
        }
    }

    /// Step 4: bare suffixes removed when `m > 1`.
    fn step4(&mut self) {
        const RULES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent",
            "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for &suffix in RULES {
            if !self.ends_with(suffix) {
                continue;
            }
            let stem = self.stem_len(suffix);
            // "ion" only deletes when the stem ends in s or t.
            if suffix == "ion" && !(stem > 0 && matches!(self.b[stem - 1], b's' | b't')) {
                return;
            }
            if self.measure(stem) > 1 {
                self.set_suffix(suffix, "");
            }
            return;
        }
    }

    /// Step 5a: drop terminal `e` when `m > 1`, or when `m == 1` and the
    /// stem does not end in `cvc`.
    fn step5a(&mut self) {
        if !self.ends_with("e") {
            return;
        }
        let stem = self.stem_len("e");
        let m = self.measure(stem);
        if m > 1 || (m == 1 && !self.ends_cvc(stem)) {
            self.b.pop();
        }
    }

    /// Step 5b: `ll` → `l` when `m > 1`.
    fn step5b(&mut self) {
        if self.measure(self.b.len()) > 1
            && self.ends_double_cons(self.b.len())
            && self.b[self.b.len() - 1] == b'l'
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vectors from Porter's paper and the reference vocabulary.
    #[test]
    fn reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn news_domain_words_conflate() {
        assert_eq!(porter_stem("investigation"), porter_stem("investigate"));
        assert_eq!(porter_stem("crashed"), porter_stem("crashes"));
        assert_eq!(porter_stem("sanctions"), porter_stem("sanction"));
        assert_eq!(porter_stem("separatists"), porter_stem("separatist"));
    }

    #[test]
    fn short_words_are_untouched() {
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem(""), "");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(porter_stem("zürich"), "zürich");
        assert_eq!(porter_stem("café"), "café");
    }

    #[test]
    fn non_lowercase_passes_through() {
        // The pipeline normalizes before stemming; raw uppercase input is
        // returned unchanged rather than mis-stemmed.
        assert_eq!(porter_stem("Ukraine"), "Ukraine");
        assert_eq!(porter_stem("u-17"), "u-17");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["crash", "plane", "investigation", "flying", "stories", "happily"] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            assert_eq!(once, twice, "stemming {w} must be idempotent");
        }
    }
}
