//! Seeded 64-bit hashing.
//!
//! All sketches need independent hash functions drawn from a family.
//! We use the SplitMix64 finalizer (`mix64`) — a fast, well-avalanched
//! bijection on `u64` — combined with per-function seeds.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit value.
///
/// Every input bit affects every output bit; consecutive inputs map to
/// statistically independent-looking outputs.
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a byte slice with a seed (FNV-1a core + avalanche finish).
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ mix64(seed);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// A family of `k` pairwise-independent-ish hash functions over `u64`
/// items, derived from one seed.
///
/// Function `i` is `h_i(x) = mix64(a_i · mix64(x) + b_i)` with `(a_i,
/// b_i)` drawn deterministically from the seed, so the same seed always
/// yields the same family (sketches built on different machines merge
/// correctly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    params: Vec<(u64, u64)>,
}

impl HashFamily {
    /// Derive `k` hash functions from `seed`.
    pub fn new(seed: u64, k: usize) -> Self {
        let mut state = mix64(seed ^ 0x5851_f42d_4c95_7f2d);
        let mut params = Vec::with_capacity(k);
        for _ in 0..k {
            state = mix64(state);
            let a = state | 1; // odd multiplier: a bijection mod 2^64
            state = mix64(state);
            let b = state;
            params.push((a, b));
        }
        HashFamily { params }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Apply function `i` to `item`.
    #[inline]
    pub fn hash(&self, i: usize, item: u64) -> u64 {
        let (a, b) = self.params[i];
        mix64(mix64(item).wrapping_mul(a).wrapping_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        // Consecutive inputs should differ in roughly half the bits.
        let d = (mix64(41) ^ mix64(42)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} differing bits");
    }

    #[test]
    fn hash_bytes_depends_on_seed_and_content() {
        assert_eq!(hash_bytes(1, b"crash"), hash_bytes(1, b"crash"));
        assert_ne!(hash_bytes(1, b"crash"), hash_bytes(2, b"crash"));
        assert_ne!(hash_bytes(1, b"crash"), hash_bytes(1, b"plane"));
        assert_ne!(hash_bytes(1, b""), hash_bytes(2, b""));
    }

    #[test]
    fn family_is_reproducible() {
        let f1 = HashFamily::new(42, 8);
        let f2 = HashFamily::new(42, 8);
        assert_eq!(f1, f2);
        for i in 0..8 {
            assert_eq!(f1.hash(i, 123), f2.hash(i, 123));
        }
    }

    #[test]
    fn different_functions_disagree() {
        let f = HashFamily::new(7, 16);
        let outputs: std::collections::HashSet<u64> = (0..16).map(|i| f.hash(i, 99)).collect();
        assert_eq!(outputs.len(), 16, "functions must be distinct");
    }

    #[test]
    fn different_seeds_give_different_families() {
        let f1 = HashFamily::new(1, 4);
        let f2 = HashFamily::new(2, 4);
        assert!((0..4).any(|i| f1.hash(i, 5) != f2.hash(i, 5)));
    }

    #[test]
    fn family_hash_distribution_is_roughly_uniform() {
        // Bucket 10k hashed items into 16 buckets; each should get a
        // reasonable share (crude chi-square-free sanity check).
        let f = HashFamily::new(3, 1);
        let mut buckets = [0u32; 16];
        for x in 0..10_000u64 {
            buckets[(f.hash(0, x) >> 60) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((400..=900).contains(&c), "bucket {i} has {c} items");
        }
    }
}
