//! loadgen — replay a generated corpus against a pivotd server.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7411 --events 5000 --conns 4 --rate 2000
//! loadgen --addr 127.0.0.1:7411 --quick --shutdown   # CI smoke
//! ```
//!
//! Prints achieved throughput and round-trip p50/p95/p99; `--json PATH`
//! additionally writes the report as a JSON artifact, and `--shutdown`
//! sends SHUTDOWN (drain + checkpoint) after the replay.

use std::path::PathBuf;

use storypivot_gen::{CorpusBuilder, GenConfig};
use storypivot_serve::client::Client;
use storypivot_serve::load::{replay, LoadOptions};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--events N] [--sources N] [--conns N] \
         [--rate EV_PER_S] [--seed N] [--json PATH] [--quick] [--stats] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    });
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {raw:?} for {flag}");
        usage();
    })
}

fn main() {
    let mut addr: Option<String> = None;
    let mut events: usize = 5_000;
    let mut sources: u32 = 8;
    let mut seed: u64 = 0;
    let mut json: Option<PathBuf> = None;
    let mut want_stats = false;
    let mut want_shutdown = false;
    let mut opts = LoadOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = Some(parse(&mut args, "--addr")),
            "--events" => events = parse(&mut args, "--events"),
            "--sources" => sources = parse(&mut args, "--sources"),
            "--conns" => opts.connections = parse(&mut args, "--conns"),
            "--rate" => opts.rate = parse(&mut args, "--rate"),
            "--seed" => seed = parse(&mut args, "--seed"),
            "--json" => json = Some(parse::<PathBuf>(&mut args, "--json")),
            "--quick" => {
                events = 600;
                sources = 4;
                opts.connections = 2;
            }
            "--stats" => want_stats = true,
            "--shutdown" => want_shutdown = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        usage();
    };

    eprintln!("generating corpus: ~{events} events over {sources} sources (seed {seed})");
    let corpus = CorpusBuilder::new(
        GenConfig::default()
            .with_seed(seed)
            .with_sources(sources)
            .with_target_snippets(events),
    )
    .build();
    eprintln!(
        "replaying {} snippets over {} connections (rate: {})",
        corpus.len(),
        opts.connections,
        if opts.rate == 0 { "unlimited".to_string() } else { format!("{} ev/s", opts.rate) }
    );

    let report = match replay(addr.as_str(), &corpus, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.summary());
    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    if want_stats || want_shutdown {
        let mut client = match Client::connect(addr.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("loadgen: reconnect failed: {e}");
                std::process::exit(1);
            }
        };
        if want_stats {
            match client.stats() {
                Ok(stats) => print!("{}", stats.render()),
                Err(e) => {
                    eprintln!("loadgen: stats failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if want_shutdown {
            match client.shutdown() {
                Ok(()) => eprintln!("server drained and checkpointed"),
                Err(e) => {
                    eprintln!("loadgen: shutdown failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
